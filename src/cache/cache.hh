/**
 * @file
 * Generic blocking cache model.
 *
 * The paper's L1 caches are direct-mapped (the GaAs design point), but
 * the model is general set-associative with LRU or random replacement
 * so the closing question of the paper — whether pipelining revives
 * the size-versus-associativity tradeoff — can be explored
 * (bench_abl_assoc).
 */

#ifndef PIPECACHE_CACHE_CACHE_HH
#define PIPECACHE_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.hh"
#include "util/units.hh"

namespace pipecache::cache {

/** Replacement policy. */
enum class Replacement : std::uint8_t
{
    LRU,
    Random,
};

/** Static configuration of one cache. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 4096;
    std::uint32_t blockBytes = 16;
    std::uint32_t assoc = 1; //!< 1 = direct-mapped
    Replacement repl = Replacement::LRU;
    /** Allocate a block on write misses (write-back caches). */
    bool writeAllocate = true;

    std::uint64_t sets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(blockBytes) *
                            assoc);
    }

    /** Panics if sizes are inconsistent or not powers of two. */
    void validate() const;
};

/** Hit/miss and write statistics. */
struct CacheStats
{
    Counter reads = 0;
    Counter writes = 0;
    Counter readMisses = 0;
    Counter writeMisses = 0;
    Counter evictions = 0;
    Counter dirtyEvictions = 0;

    Counter accesses() const { return reads + writes; }
    Counter misses() const { return readMisses + writeMisses; }

    double missRate() const
    {
        return accesses() == 0
                   ? 0.0
                   : static_cast<double>(misses()) /
                         static_cast<double>(accesses());
    }
};

/** A blocking cache (no MSHRs — 1992 technology). */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config, std::uint64_t seed = 0);

    /**
     * Access @p addr; returns true on hit. Misses allocate (subject to
     * writeAllocate) and update statistics.
     */
    bool access(Addr addr, bool write);

    /** True if the block containing addr is resident (no side effects). */
    bool contains(Addr addr) const;

    /** Invalidate everything (keeps statistics). */
    void flush();

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats(); }

    const CacheConfig &config() const { return config_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t stamp = 0;
    };

    CacheConfig config_;
    std::vector<Line> lines_;
    CacheStats stats_;
    Rng rng_;
    std::uint64_t tick_ = 0;

    std::uint64_t setShift_;
    std::uint64_t setMask_;

    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;
};

} // namespace pipecache::cache

#endif // PIPECACHE_CACHE_CACHE_HH
