#include "cache/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace pipecache::cache {

namespace {

/**
 * Compare-mask over a compile-time-width row: bit w set iff lane[w]
 * equals tag. Fully unrolled, no data-dependent branches — the
 * vectorizer turns the power-of-two widths into single packed
 * compares.
 */
template <std::uint32_t W>
inline std::uint32_t
fixedMask(const Addr *lane, Addr tag)
{
    std::uint32_t mask = 0;
    for (std::uint32_t w = 0; w < W; ++w)
        mask |= static_cast<std::uint32_t>(lane[w] == tag) << w;
    return mask;
}

inline std::uint32_t
roundUpPow2(std::uint32_t x)
{
    return std::bit_ceil(x);
}

} // namespace

void
CacheConfig::validate() const
{
    PC_ASSERT(isPowerOfTwo(sizeBytes), name, ": size not a power of two");
    PC_ASSERT(isPowerOfTwo(blockBytes) && blockBytes >= 4,
              name, ": bad block size");
    PC_ASSERT(assoc >= 1, name, ": associativity must be >= 1");
    PC_ASSERT(sizeBytes >= static_cast<std::uint64_t>(blockBytes) * assoc,
              name, ": cache smaller than one set");
    PC_ASSERT(isPowerOfTwo(sets()), name, ": set count not a power of two");
}

Cache::Cache(const CacheConfig &config, std::uint64_t seed)
    : config_(config), rng_(seed ^ 0x9d39247e33776d41ULL)
{
    config_.validate();
    wayStride_ = roundUpPow2(config_.assoc);
    const std::size_t lanes = config_.sets() * wayStride_;
    tags_.assign(lanes, kInvalidTag);
    stamps_.assign(lanes, 0);
    dirty_.assign(lanes, 0);
    setShift_ = floorLog2(config_.blockBytes);
    setMask_ = config_.sets() - 1;
}

std::uint32_t
Cache::findWay(const Addr *lane, Addr tag) const
{
    switch (wayStride_) {
      case 1:
        return lane[0] == tag ? 0 : kNoWay;
      case 2: {
        const std::uint32_t m = fixedMask<2>(lane, tag);
        return m != 0 ? std::countr_zero(m) : kNoWay;
      }
      case 4: {
        const std::uint32_t m = fixedMask<4>(lane, tag);
        return m != 0 ? std::countr_zero(m) : kNoWay;
      }
      case 8: {
        const std::uint32_t m = fixedMask<8>(lane, tag);
        return m != 0 ? std::countr_zero(m) : kNoWay;
      }
      case 16: {
        const std::uint32_t m = fixedMask<16>(lane, tag);
        return m != 0 ? std::countr_zero(m) : kNoWay;
      }
      default:
        // Strides past 32 come in multiples of 32 (powers of two).
        for (std::uint32_t base = 0; base < wayStride_; base += 32) {
            const std::uint32_t m = fixedMask<32>(lane + base, tag);
            if (m != 0)
                return base + std::countr_zero(m);
        }
        return kNoWay;
    }
}

bool
Cache::accessDirectMiss(std::uint64_t set, Addr tag, bool write)
{
    const bool evict = tags_[set] != kInvalidTag;
    if (evict && config_.repl == Replacement::Random)
        rng_.nextRange(1); // keep the Random draw stream identical
    stats_.readMisses += write ? 0 : 1;
    stats_.writeMisses += write ? 1 : 0;
    stats_.evictions += evict ? 1 : 0;
    stats_.dirtyEvictions += (evict && dirty_[set] != 0) ? 1 : 0;
    dirty_[set] = write ? 1 : 0;
    tags_[set] = tag;
    return false;
}

bool
Cache::accessGeneral(Addr addr, bool write)
{
    ++tick_;
    const Addr tag = addr >> setShift_;
    const std::uint64_t set = tag & setMask_;
    const std::size_t base = set * wayStride_;
    Addr *const tagLane = &tags_[base];
    std::uint64_t *const stampLane = &stamps_[base];
    std::uint8_t *const dirtyLane = &dirty_[base];

    const std::uint32_t hitWay = findWay(tagLane, tag);
    if (hitWay != kNoWay) {
        stampLane[hitWay] = tick_;
        dirtyLane[hitWay] |= write ? 1 : 0;
        return true;
    }

    stats_.readMisses += write ? 0 : 1;
    stats_.writeMisses += write ? 1 : 0;

    if (write && !config_.writeAllocate)
        return false;

    // Victim selection walks only the real ways (padding lanes stay
    // kInvalidTag but must never be filled). Preference order matches
    // the AoS scan it replaces: first invalid way, else the
    // front-to-back minimum stamp (strict <), else a Random draw.
    const std::uint32_t assoc = config_.assoc;
    std::uint32_t victim;
    bool evicting;
    if (config_.repl == Replacement::LRU) {
        // Invalid ways keep stamp 0 and live lines are stamped from
        // tick 1 up, so a single branchless argmin finds the first
        // invalid way when one exists and the true LRU way otherwise.
        victim = 0;
        for (std::uint32_t w = 1; w < assoc; ++w)
            victim = stampLane[w] < stampLane[victim] ? w : victim;
        evicting = tagLane[victim] != kInvalidTag;
    } else {
        victim = kNoWay;
        for (std::uint32_t w = 0; w < assoc; ++w) {
            if (tagLane[w] == kInvalidTag) {
                victim = w;
                break;
            }
        }
        evicting = victim == kNoWay;
        if (evicting)
            victim = static_cast<std::uint32_t>(rng_.nextRange(assoc));
    }
    if (evicting) {
        ++stats_.evictions;
        if (dirtyLane[victim] != 0)
            ++stats_.dirtyEvictions;
    }
    tagLane[victim] = tag;
    dirtyLane[victim] = write ? 1 : 0;
    stampLane[victim] = tick_;
    return false;
}

bool
Cache::contains(Addr addr) const
{
    const Addr tag = addr >> setShift_;
    const std::uint64_t set = tag & setMask_;
    return findWay(&tags_[set * wayStride_], tag) != kNoWay;
}

void
Cache::flush()
{
    tags_.assign(tags_.size(), kInvalidTag);
    stamps_.assign(stamps_.size(), 0);
    dirty_.assign(dirty_.size(), 0);
}

} // namespace pipecache::cache
