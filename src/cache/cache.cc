#include "cache/cache.hh"

#include "util/logging.hh"

namespace pipecache::cache {

void
CacheConfig::validate() const
{
    PC_ASSERT(isPowerOfTwo(sizeBytes), name, ": size not a power of two");
    PC_ASSERT(isPowerOfTwo(blockBytes) && blockBytes >= 4,
              name, ": bad block size");
    PC_ASSERT(assoc >= 1, name, ": associativity must be >= 1");
    PC_ASSERT(sizeBytes >= static_cast<std::uint64_t>(blockBytes) * assoc,
              name, ": cache smaller than one set");
    PC_ASSERT(isPowerOfTwo(sets()), name, ": set count not a power of two");
}

Cache::Cache(const CacheConfig &config, std::uint64_t seed)
    : config_(config), rng_(seed ^ 0x9d39247e33776d41ULL)
{
    config_.validate();
    lines_.resize(config_.sets() * config_.assoc);
    setShift_ = floorLog2(config_.blockBytes);
    setMask_ = config_.sets() - 1;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    const std::uint64_t set = (addr >> setShift_) & setMask_;
    const Addr tag = addr >> setShift_;
    Line *base = &lines_[set * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

bool
Cache::access(Addr addr, bool write)
{
    ++tick_;
    stats_.reads += write ? 0 : 1;
    stats_.writes += write ? 1 : 0;

    // One scan serves lookup and victim selection: the tag/set pair
    // is computed once, and on a miss the invalid way and the LRU way
    // are already known — no second walk over the set.
    const Addr tag = addr >> setShift_;
    const std::uint64_t set = tag & setMask_;
    Line *const base = &lines_[set * config_.assoc];

    Line *firstInvalid = nullptr;
    Line *lru = nullptr;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            if (!firstInvalid)
                firstInvalid = &line;
            continue;
        }
        if (line.tag == tag) {
            line.stamp = tick_;
            line.dirty = line.dirty || write;
            return true;
        }
        // Strict < keeps the lowest index on equal stamps, matching
        // a front-to-back minimum scan.
        if (!lru || line.stamp < lru->stamp)
            lru = &line;
    }

    stats_.readMisses += write ? 0 : 1;
    stats_.writeMisses += write ? 1 : 0;

    if (write && !config_.writeAllocate)
        return false;

    Line *victim = firstInvalid;
    if (!victim) {
        victim = config_.repl == Replacement::Random
                     ? &base[rng_.nextRange(config_.assoc)]
                     : lru;
    }
    if (victim->valid) {
        ++stats_.evictions;
        if (victim->dirty)
            ++stats_.dirtyEvictions;
    }
    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->stamp = tick_;
    return false;
}

bool
Cache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line();
}

} // namespace pipecache::cache
