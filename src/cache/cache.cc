#include "cache/cache.hh"

#include "util/logging.hh"

namespace pipecache::cache {

void
CacheConfig::validate() const
{
    PC_ASSERT(isPowerOfTwo(sizeBytes), name, ": size not a power of two");
    PC_ASSERT(isPowerOfTwo(blockBytes) && blockBytes >= 4,
              name, ": bad block size");
    PC_ASSERT(assoc >= 1, name, ": associativity must be >= 1");
    PC_ASSERT(sizeBytes >= static_cast<std::uint64_t>(blockBytes) * assoc,
              name, ": cache smaller than one set");
    PC_ASSERT(isPowerOfTwo(sets()), name, ": set count not a power of two");
}

Cache::Cache(const CacheConfig &config, std::uint64_t seed)
    : config_(config), rng_(seed ^ 0x9d39247e33776d41ULL)
{
    config_.validate();
    lines_.resize(config_.sets() * config_.assoc);
    setShift_ = floorLog2(config_.blockBytes);
    setMask_ = config_.sets() - 1;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    const std::uint64_t set = (addr >> setShift_) & setMask_;
    const Addr tag = addr >> setShift_;
    Line *base = &lines_[set * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

Cache::Line &
Cache::victim(std::uint64_t set)
{
    Line *base = &lines_[set * config_.assoc];
    // Prefer an invalid way.
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if (!base[w].valid)
            return base[w];
    }
    if (config_.repl == Replacement::Random)
        return base[rng_.nextRange(config_.assoc)];

    Line *lru = base;
    for (std::uint32_t w = 1; w < config_.assoc; ++w) {
        if (base[w].stamp < lru->stamp)
            lru = &base[w];
    }
    return *lru;
}

bool
Cache::access(Addr addr, bool write)
{
    ++tick_;
    if (write)
        ++stats_.writes;
    else
        ++stats_.reads;

    if (Line *line = findLine(addr)) {
        line->stamp = tick_;
        line->dirty = line->dirty || write;
        return true;
    }

    if (write)
        ++stats_.writeMisses;
    else
        ++stats_.readMisses;

    if (write && !config_.writeAllocate)
        return false;

    const std::uint64_t set = (addr >> setShift_) & setMask_;
    Line &line = victim(set);
    if (line.valid) {
        ++stats_.evictions;
        if (line.dirty)
            ++stats_.dirtyEvictions;
    }
    line.valid = true;
    line.dirty = write;
    line.tag = addr >> setShift_;
    line.stamp = tick_;
    return false;
}

bool
Cache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line();
}

} // namespace pipecache::cache
