/**
 * @file
 * Main-memory refill model.
 *
 * The paper's miss penalties (6, 10, 18 cycles) come from a refill
 * pipe delivering 4, 2, or 1 words per cycle after a 2-cycle startup,
 * with the block size chosen per penalty. This model computes the
 * penalty from those parameters, or accepts an explicit flat penalty
 * (the form the paper's CPI experiments use).
 */

#ifndef PIPECACHE_CACHE_MEMORY_HH
#define PIPECACHE_CACHE_MEMORY_HH

#include <cstdint>

#include "util/units.hh"

namespace pipecache::cache {

/** Refill-rate description of the memory path behind L1. */
struct RefillConfig
{
    std::uint32_t startupCycles = 2;
    /** Words delivered per cycle once streaming (1, 2, or 4). */
    std::uint32_t wordsPerCycle = 2;

    /** Cycles to refill a block of @p block_bytes. */
    std::uint32_t penalty(std::uint32_t block_bytes) const;
};

/**
 * The L1 miss penalty used by an experiment: either a flat cycle
 * count (the paper's "constant time L1 miss penalty") or derived from
 * a refill configuration and block size.
 */
class MissPenalty
{
  public:
    /** Flat penalty in cycles. */
    static MissPenalty flat(std::uint32_t cycles);

    /** Computed from refill parameters for a given block size. */
    static MissPenalty fromRefill(const RefillConfig &refill,
                                  std::uint32_t block_bytes);

    std::uint32_t cycles() const { return cycles_; }

  private:
    explicit MissPenalty(std::uint32_t cycles) : cycles_(cycles) {}
    std::uint32_t cycles_;
};

} // namespace pipecache::cache

#endif // PIPECACHE_CACHE_MEMORY_HH
