#include "cache/stack_sim.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace pipecache::cache {

Counter
StackSimulator::GeomCounts::readMissTotal() const
{
    Counter total = 0;
    for (const Counter c : readMisses)
        total += c;
    return total;
}

Counter
StackSimulator::GeomCounts::writeMissTotal() const
{
    Counter total = 0;
    for (const Counter c : writeMisses)
        total += c;
    return total;
}

StackSimulator::StackSimulator(std::uint32_t blockBytes,
                               std::vector<StackGeometry> geometries,
                               std::size_t numBenches)
    : blockBytes_(blockBytes), numBenches_(numBenches),
      geoms_(std::move(geometries))
{
    PC_ASSERT(isPowerOfTwo(blockBytes_) && blockBytes_ >= 4,
              "stack sim: bad block size");
    PC_ASSERT(!geoms_.empty(), "stack sim: no geometries");
    PC_ASSERT(numBenches_ >= 1, "stack sim: no benchmarks");
    blockShift_ = static_cast<std::uint32_t>(floorLog2(blockBytes_));

    std::sort(geoms_.begin(), geoms_.end());
    geoms_.erase(std::unique(geoms_.begin(), geoms_.end()),
                 geoms_.end());
    counts_.resize(geoms_.size());
    for (GeomCounts &gc : counts_) {
        gc.readMisses.assign(numBenches_, 0);
        gc.writeMisses.assign(numBenches_, 0);
    }

    for (std::uint32_t g = 0; g < geoms_.size(); ++g) {
        PC_ASSERT(geoms_[g].assoc >= 1, "stack sim: assoc must be >= 1");
        PC_ASSERT(geoms_[g].log2Sets < 32, "stack sim: set count too big");
        if (levels_.empty() ||
            levels_.back().log2Sets != geoms_[g].log2Sets) {
            Level lv;
            lv.log2Sets = geoms_[g].log2Sets;
            lv.setMask =
                static_cast<std::uint32_t>((1ULL << lv.log2Sets) - 1);
            lv.head.assign(1ULL << lv.log2Sets, kNull);
            lv.len.assign(1ULL << lv.log2Sets, 0);
            levels_.push_back(std::move(lv));
        }
        Level &lv = levels_.back();
        lv.geomIdx.push_back(g);
        lv.maxAssoc = std::max(lv.maxAssoc, geoms_[g].assoc);
        PC_ASSERT(lv.geomIdx.size() <= 32,
                  "stack sim: more than 32 associativities per level");
        lv.allMask = lv.geomIdx.size() == 32
                         ? ~0u
                         : (1u << lv.geomIdx.size()) - 1;
    }

    reads_.assign(numBenches_, 0);
    writes_.assign(numBenches_, 0);
}

void
StackSimulator::access(std::size_t bench, Addr addr, bool write)
{
    const std::uint32_t blk =
        static_cast<std::uint32_t>(addr) >> blockShift_;
    const auto [it, inserted] = blockIndex_.try_emplace(blk, numBlocks_);
    const std::uint32_t bi = it->second;
    if (inserted) {
        ++numBlocks_;
        for (Level &lv : levels_) {
            lv.prev.push_back(kNull);
            lv.next.push_back(kNull);
            lv.dirty.push_back(0);
        }
    }
    ++accesses_;
    reads_[bench] += write ? 0 : 1;
    writes_[bench] += write ? 1 : 0;

    const auto sbi = static_cast<std::int32_t>(bi);
    for (Level &lv : levels_) {
        const std::uint32_t set = blk & lv.setMask;
        std::uint32_t missMask;
        if (inserted) {
            // Cold block: misses at every geometry; becomes MRU.
            missMask = lv.allMask;
            lv.next[bi] = lv.head[set];
            if (lv.head[set] != kNull)
                lv.prev[lv.head[set]] = sbi;
            lv.head[set] = sbi;
            ++lv.len[set];
        } else {
            // Reuse depth, capped: depth >= maxAssoc already means a
            // miss in every geometry of this level, so never walk
            // further (bounds the cost on low-locality streams).
            std::uint32_t d = 0;
            std::int32_t cur = lv.head[set];
            while (cur != sbi && d < lv.maxAssoc) {
                cur = lv.next[cur];
                ++d;
            }
            missMask = 0;
            for (std::uint32_t k = 0;
                 k < static_cast<std::uint32_t>(lv.geomIdx.size()); ++k) {
                if (d >= geoms_[lv.geomIdx[k]].assoc)
                    missMask |= 1u << k;
            }
            if (lv.head[set] != sbi) {
                // Move to front.
                const std::int32_t p = lv.prev[bi];
                const std::int32_t n = lv.next[bi];
                lv.next[p] = n;
                if (n != kNull)
                    lv.prev[n] = p;
                lv.prev[bi] = kNull;
                lv.next[bi] = lv.head[set];
                lv.prev[lv.head[set]] = sbi;
                lv.head[set] = sbi;
            }
        }

        std::uint32_t &dm = lv.dirty[bi];
        if (missMask != 0) {
            // A miss at geometry k means the previous incarnation of
            // this block was evicted there since its last touch; if
            // it was dirty then, that eviction was a dirty one.
            for (std::uint32_t m = dm & missMask; m != 0; m &= m - 1)
                ++counts_[lv.geomIdx[std::countr_zero(m)]].dirtyEvictions;
            for (std::uint32_t m = missMask; m != 0; m &= m - 1) {
                GeomCounts &gc = counts_[lv.geomIdx[std::countr_zero(m)]];
                (write ? gc.writeMisses : gc.readMisses)[bench] += 1;
            }
        }
        // Hit: dirty |= write. Miss: refilled with dirty = write.
        dm = write ? lv.allMask : (dm & ~missMask);
    }
}

void
StackSimulator::finish()
{
    if (finished_)
        return;
    finished_ = true;

    for (Level &lv : levels_) {
        const std::size_t numSets = lv.head.size();
        // Blocks sitting beyond depth A that still carry a dirty bit
        // were evicted dirty and never missed again.
        for (std::size_t set = 0; set < numSets; ++set) {
            std::uint32_t pos = 0;
            for (std::int32_t cur = lv.head[set]; cur != kNull;
                 cur = lv.next[cur], ++pos) {
                const std::uint32_t dm = lv.dirty[cur];
                if (dm == 0)
                    continue;
                for (std::uint32_t m = dm; m != 0; m &= m - 1) {
                    const std::uint32_t k =
                        static_cast<std::uint32_t>(std::countr_zero(m));
                    if (pos >= geoms_[lv.geomIdx[k]].assoc)
                        ++counts_[lv.geomIdx[k]].dirtyEvictions;
                }
            }
        }
        // Every fill either grew occupancy (until the set was full)
        // or evicted: evictions = fills - final occupancy.
        for (const std::uint32_t g : lv.geomIdx) {
            const std::uint32_t a = geoms_[g].assoc;
            Counter resident = 0;
            for (std::size_t set = 0; set < numSets; ++set)
                resident += std::min<Counter>(a, lv.len[set]);
            GeomCounts &gc = counts_[g];
            const Counter fills =
                gc.readMissTotal() + gc.writeMissTotal();
            PC_ASSERT(fills >= resident, "stack sim: fills < residents");
            gc.evictions = fills - resident;
        }
    }
}

const StackSimulator::GeomCounts &
StackSimulator::counts(std::uint32_t log2Sets, std::uint32_t assoc) const
{
    PC_ASSERT(finished_, "stack sim: counts() before finish()");
    for (std::size_t g = 0; g < geoms_.size(); ++g) {
        if (geoms_[g].log2Sets == log2Sets && geoms_[g].assoc == assoc)
            return counts_[g];
    }
    PC_PANIC("stack sim: geometry (2^", log2Sets, " sets, ", assoc,
             "-way) was not registered");
}

} // namespace pipecache::cache
