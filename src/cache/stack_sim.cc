#include "cache/stack_sim.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace pipecache::cache {

namespace {

/** Fibonacci multiplier: an odd constant makes the low-bit slot map a
 *  bijection, so linear probing sees well-spread keys. */
constexpr std::uint32_t kHashMul = 2654435761u;

constexpr std::size_t kInitialIndexCap = 1024;
constexpr std::uint32_t kInitialBlockCap = 1024;

/**
 * Reuse depth + move-to-front over one window row at compile-time
 * width: a fully unrolled compare mask (one packed compare for the
 * SIMD-width cases), then an unconditional rewrite of the whole row —
 * every lane is a select, no data-dependent branches. Returns the
 * depth (W if the block was absent).
 */
template <std::uint32_t W>
inline std::uint32_t
depthAndRotate(std::uint32_t *win, std::uint32_t bi)
{
    std::uint32_t m = 0;
    for (std::uint32_t p = 0; p < W; ++p)
        m |= static_cast<std::uint32_t>(win[p] == bi) << p;
    const std::uint32_t d =
        m != 0 ? static_cast<std::uint32_t>(std::countr_zero(m)) : W;
    if constexpr (W > 1) {
        const std::uint32_t rot = std::min(d, W - 1);
        for (std::uint32_t p = W - 1; p > 0; --p)
            win[p] = p <= rot ? win[p - 1] : win[p];
    }
    win[0] = bi;
    return d;
}

inline std::uint32_t
depthAndRotateAny(std::uint32_t *win, std::uint32_t bi, std::uint32_t w)
{
    std::uint32_t d = w;
    for (std::uint32_t p = 0; p < w; ++p)
        d = win[p] == bi ? p : d;
    for (std::uint32_t p = std::min(d, w - 1); p > 0; --p)
        win[p] = win[p - 1];
    win[0] = bi;
    return d;
}

} // namespace

Counter
StackSimulator::GeomCounts::readMissTotal() const
{
    Counter total = 0;
    for (const Counter c : readMisses)
        total += c;
    return total;
}

Counter
StackSimulator::GeomCounts::writeMissTotal() const
{
    Counter total = 0;
    for (const Counter c : writeMisses)
        total += c;
    return total;
}

StackSimulator::StackSimulator(std::uint32_t blockBytes,
                               std::vector<StackGeometry> geometries,
                               std::size_t numBenches,
                               StackSimImpl impl)
    : blockBytes_(blockBytes), numBenches_(numBenches), impl_(impl),
      geoms_(std::move(geometries))
{
    PC_ASSERT(isPowerOfTwo(blockBytes_) && blockBytes_ >= 4,
              "stack sim: bad block size");
    PC_ASSERT(!geoms_.empty(), "stack sim: no geometries");
    PC_ASSERT(numBenches_ >= 1, "stack sim: no benchmarks");
    blockShift_ = static_cast<std::uint32_t>(floorLog2(blockBytes_));

    std::sort(geoms_.begin(), geoms_.end());
    geoms_.erase(std::unique(geoms_.begin(), geoms_.end()),
                 geoms_.end());
    counts_.resize(geoms_.size());
    for (GeomCounts &gc : counts_) {
        gc.readMisses.assign(numBenches_, 0);
        gc.writeMisses.assign(numBenches_, 0);
    }

    for (std::uint32_t g = 0; g < geoms_.size(); ++g) {
        PC_ASSERT(geoms_[g].assoc >= 1, "stack sim: assoc must be >= 1");
        PC_ASSERT(geoms_[g].assoc < 0xFFFF,
                  "stack sim: associativity too large");
        PC_ASSERT(geoms_[g].log2Sets < 32, "stack sim: set count too big");
        if (levels_.empty() ||
            levels_.back().log2Sets != geoms_[g].log2Sets) {
            Level lv;
            lv.log2Sets = geoms_[g].log2Sets;
            lv.setMask =
                static_cast<std::uint32_t>((1ULL << lv.log2Sets) - 1);
            lv.len.assign(1ULL << lv.log2Sets, 0);
            levels_.push_back(std::move(lv));
        }
        Level &lv = levels_.back();
        lv.geomIdx.push_back(g);
        lv.maxAssoc = std::max(lv.maxAssoc, geoms_[g].assoc);
        PC_ASSERT(lv.geomIdx.size() <= 32,
                  "stack sim: more than 32 associativities per level");
        lv.allMask = lv.geomIdx.size() == 32
                         ? ~0u
                         : (1u << lv.geomIdx.size()) - 1;
    }

    // Second pass, once each level's maxAssoc is final: the
    // depth-indexed miss-mask table and the engine's storage.
    for (Level &lv : levels_) {
        lv.missMaskByDepth.assign(lv.maxAssoc + 1, 0);
        for (std::uint32_t d = 0; d <= lv.maxAssoc; ++d) {
            std::uint32_t mask = 0;
            for (std::uint32_t k = 0; k < lv.geomIdx.size(); ++k) {
                if (d >= geoms_[lv.geomIdx[k]].assoc)
                    mask |= 1u << k;
            }
            lv.missMaskByDepth[d] = mask;
        }
        if (impl_ == StackSimImpl::Vectorized) {
            lv.window.assign(lv.len.size() *
                                 static_cast<std::size_t>(lv.maxAssoc),
                             kNoBlock);
            lv.hist.assign(static_cast<std::size_t>(lv.maxAssoc + 1) *
                               numBenches_ * 2,
                           0);
            lv.dirtyEv.assign(lv.geomIdx.size(), 0);
        } else {
            lv.head.assign(lv.len.size(), kNull);
        }
    }

    if (impl_ == StackSimImpl::Vectorized) {
        index_.assign(kInitialIndexCap, IdxEntry{kEmptyKey, 0});
        indexMask_ = kInitialIndexCap - 1;
    }

    reads_.assign(numBenches_, 0);
    writes_.assign(numBenches_, 0);
}

void
StackSimulator::growIndex()
{
    const std::size_t newCap =
        (static_cast<std::size_t>(indexMask_) + 1) * 2;
    std::vector<IdxEntry> fresh(newCap, IdxEntry{kEmptyKey, 0});
    const std::uint32_t newMask =
        static_cast<std::uint32_t>(newCap - 1);
    for (const IdxEntry &e : index_) {
        if (e.key == kEmptyKey)
            continue;
        std::uint32_t slot = (e.key * kHashMul) & newMask;
        while (fresh[slot].key != kEmptyKey)
            slot = (slot + 1) & newMask;
        fresh[slot] = e;
    }
    index_ = std::move(fresh);
    indexMask_ = newMask;
}

void
StackSimulator::growBlockArrays()
{
    blockCap_ = blockCap_ == 0 ? kInitialBlockCap : blockCap_ * 2;
    dirtyRows_.resize(static_cast<std::size_t>(blockCap_) *
                          levels_.size(),
                      0);
    dirtyFlag_.resize(blockCap_, 0);
}

std::uint32_t
StackSimulator::lookupOrInsert(std::uint32_t blk, bool &inserted)
{
    std::uint32_t slot = (blk * kHashMul) & indexMask_;
    while (true) {
        const IdxEntry e = index_[slot];
        if (e.key == blk) {
            inserted = false;
            return e.val;
        }
        if (e.key == kEmptyKey)
            break;
        slot = (slot + 1) & indexMask_;
    }
    if ((indexSize_ + 1) * 8 >
        (static_cast<std::size_t>(indexMask_) + 1) * 7) {
        growIndex();
        slot = (blk * kHashMul) & indexMask_;
        while (index_[slot].key != kEmptyKey)
            slot = (slot + 1) & indexMask_;
    }
    if (numBlocks_ == blockCap_)
        growBlockArrays();
    index_[slot] = IdxEntry{blk, numBlocks_};
    ++indexSize_;
    inserted = true;
    return numBlocks_++;
}

void
StackSimulator::accessFast(std::size_t bench, Addr addr, bool write)
{
    const std::uint32_t blk =
        static_cast<std::uint32_t>(addr) >> blockShift_;
    ++accesses_;
    reads_[bench] += write ? 0 : 1;
    writes_[bench] += write ? 1 : 0;

    const std::size_t numLevels = levels_.size();

    // Repeat of the previous block: depth 0 in every level. The
    // windows already have it in front, depth 0 misses nowhere (assoc
    // >= 1), and hist[0] never feeds a counter — only the dirty state
    // can change, and only on a write (hit + write => all masks go
    // full, exactly the dm update below with missMask = 0).
    if (blk == lastBlk_) {
        if (write) {
            dirtyFlag_[lastBi_] = 1;
            std::uint32_t *const row =
                &dirtyRows_[static_cast<std::size_t>(lastBi_) *
                            numLevels];
            for (std::size_t li = 0; li < numLevels; ++li)
                row[li] = levels_[li].allMask;
        }
        return;
    }

    bool inserted = false;
    const std::uint32_t bi = lookupOrInsert(blk, inserted);
    lastBlk_ = blk;
    lastBi_ = bi;

    // Clean blocks carry no dirty history: their rows are all-zero,
    // so the dirty-eviction scan and the mask update are no-ops and
    // the row (the one per-block structure too big to stay cached)
    // need not be touched at all.
    const bool dirtyWork = write || dirtyFlag_[bi] != 0;
    std::uint32_t *const dirtyRow =
        &dirtyRows_[static_cast<std::size_t>(bi) * numLevels];

    for (std::size_t li = 0; li < numLevels; ++li) {
        Level &lv = levels_[li];
        const std::uint32_t set = blk & lv.setMask;
        const std::uint32_t wa = lv.maxAssoc;
        std::uint32_t *const win =
            &lv.window[static_cast<std::size_t>(set) * wa];

        // Reuse depth + move-to-front, dispatched on the row width so
        // the common widths run the unrolled packed-compare kernel.
        // A depth of wa means absent: the rotation pushed the last
        // entry out, which is already a miss in every geometry here.
        std::uint32_t d;
        switch (wa) {
          case 1:
            d = depthAndRotate<1>(win, bi);
            break;
          case 2:
            d = depthAndRotate<2>(win, bi);
            break;
          case 4:
            d = depthAndRotate<4>(win, bi);
            break;
          case 8:
            d = depthAndRotate<8>(win, bi);
            break;
          case 16:
            d = depthAndRotate<16>(win, bi);
            break;
          default:
            d = depthAndRotateAny(win, bi, wa);
            break;
        }

        if (inserted)
            ++lv.len[set];

        lv.hist[(static_cast<std::size_t>(d) * numBenches_ + bench) *
                    2 +
                (write ? 1 : 0)] += 1;

        if (dirtyWork) {
            const std::uint32_t missMask = lv.missMaskByDepth[d];
            std::uint32_t &dm = dirtyRow[li];
            // A miss at geometry k means the previous incarnation of
            // this block was evicted there since its last touch; if
            // it was dirty then, that eviction was a dirty one.
            for (std::uint32_t m = dm & missMask; m != 0; m &= m - 1)
                ++lv.dirtyEv[std::countr_zero(m)];
            // Hit: dirty |= write. Miss: refilled with dirty = write.
            dm = write ? lv.allMask : (dm & ~missMask);
        }
    }
    if (write)
        dirtyFlag_[bi] = 1;
}

void
StackSimulator::accessRef(std::size_t bench, Addr addr, bool write)
{
    const std::uint32_t blk =
        static_cast<std::uint32_t>(addr) >> blockShift_;
    const auto [it, inserted] = blockIndex_.try_emplace(blk, numBlocks_);
    const std::uint32_t bi = it->second;
    if (inserted) {
        ++numBlocks_;
        for (Level &lv : levels_) {
            lv.prev.push_back(kNull);
            lv.next.push_back(kNull);
            lv.dirty.push_back(0);
        }
    }
    ++accesses_;
    reads_[bench] += write ? 0 : 1;
    writes_[bench] += write ? 1 : 0;

    const auto sbi = static_cast<std::int32_t>(bi);
    for (Level &lv : levels_) {
        const std::uint32_t set = blk & lv.setMask;
        std::uint32_t missMask;
        if (inserted) {
            // Cold block: misses at every geometry; becomes MRU.
            missMask = lv.allMask;
            lv.next[bi] = lv.head[set];
            if (lv.head[set] != kNull)
                lv.prev[lv.head[set]] = sbi;
            lv.head[set] = sbi;
            ++lv.len[set];
        } else {
            // Reuse depth, capped: depth >= maxAssoc already means a
            // miss in every geometry of this level, so never walk
            // further (bounds the cost on low-locality streams).
            std::uint32_t d = 0;
            std::int32_t cur = lv.head[set];
            while (cur != sbi && d < lv.maxAssoc) {
                cur = lv.next[cur];
                ++d;
            }
            missMask = 0;
            for (std::uint32_t k = 0;
                 k < static_cast<std::uint32_t>(lv.geomIdx.size()); ++k) {
                if (d >= geoms_[lv.geomIdx[k]].assoc)
                    missMask |= 1u << k;
            }
            if (lv.head[set] != sbi) {
                // Move to front.
                const std::int32_t p = lv.prev[bi];
                const std::int32_t n = lv.next[bi];
                lv.next[p] = n;
                if (n != kNull)
                    lv.prev[n] = p;
                lv.prev[bi] = kNull;
                lv.next[bi] = lv.head[set];
                lv.prev[lv.head[set]] = sbi;
                lv.head[set] = sbi;
            }
        }

        std::uint32_t &dm = lv.dirty[bi];
        if (missMask != 0) {
            // A miss at geometry k means the previous incarnation of
            // this block was evicted there since its last touch; if
            // it was dirty then, that eviction was a dirty one.
            for (std::uint32_t m = dm & missMask; m != 0; m &= m - 1)
                ++counts_[lv.geomIdx[std::countr_zero(m)]].dirtyEvictions;
            for (std::uint32_t m = missMask; m != 0; m &= m - 1) {
                GeomCounts &gc = counts_[lv.geomIdx[std::countr_zero(m)]];
                (write ? gc.writeMisses : gc.readMisses)[bench] += 1;
            }
        }
        // Hit: dirty |= write. Miss: refilled with dirty = write.
        dm = write ? lv.allMask : (dm & ~missMask);
    }
}

void
StackSimulator::access(std::size_t bench, Addr addr, bool write)
{
    if (impl_ == StackSimImpl::Vectorized)
        accessFast(bench, addr, write);
    else
        accessRef(bench, addr, write);
}

void
StackSimulator::accessBatch(std::span<const AccessRecord> records)
{
    if (impl_ == StackSimImpl::Vectorized) {
        for (const AccessRecord &r : records)
            accessFast(r.bench, r.addr, r.store != 0);
    } else {
        for (const AccessRecord &r : records)
            accessRef(r.bench, r.addr, r.store != 0);
    }
}

void
StackSimulator::finishFast()
{
    const std::size_t numLevels = levels_.size();
    for (std::size_t li = 0; li < numLevels; ++li) {
        Level &lv = levels_[li];
        // Fold the depth histogram into per-geometry miss counts: a
        // reuse at depth d missed every geometry with assoc <= d, so
        // geometry k's misses are the histogram tail d >= assoc.
        for (std::size_t k = 0; k < lv.geomIdx.size(); ++k) {
            GeomCounts &gc = counts_[lv.geomIdx[k]];
            const std::uint32_t a = geoms_[lv.geomIdx[k]].assoc;
            for (std::uint32_t d = a; d <= lv.maxAssoc; ++d) {
                for (std::size_t b = 0; b < numBenches_; ++b) {
                    const std::size_t at =
                        (static_cast<std::size_t>(d) * numBenches_ +
                         b) *
                        2;
                    gc.readMisses[b] += lv.hist[at];
                    gc.writeMisses[b] += lv.hist[at + 1];
                }
            }
            gc.dirtyEvictions += lv.dirtyEv[k];
        }
        // Resident depth of every block still in a window; absent
        // blocks sit beyond every geometry's associativity.
        std::vector<std::uint16_t> depth(numBlocks_, 0xFFFF);
        const std::size_t numSets = lv.len.size();
        for (std::size_t set = 0; set < numSets; ++set) {
            const std::uint32_t *win =
                &lv.window[set * static_cast<std::size_t>(lv.maxAssoc)];
            for (std::uint32_t p = 0; p < lv.maxAssoc; ++p) {
                if (win[p] != kNoBlock)
                    depth[win[p]] = static_cast<std::uint16_t>(p);
            }
        }
        // Blocks sitting beyond depth A that still carry a dirty bit
        // were evicted dirty and never missed again.
        for (std::uint32_t bi = 0; bi < numBlocks_; ++bi) {
            const std::uint32_t dm =
                dirtyRows_[static_cast<std::size_t>(bi) * numLevels +
                           li];
            if (dm == 0)
                continue;
            const std::uint32_t pos = depth[bi];
            for (std::uint32_t m = dm; m != 0; m &= m - 1) {
                const std::uint32_t k =
                    static_cast<std::uint32_t>(std::countr_zero(m));
                if (pos >= geoms_[lv.geomIdx[k]].assoc)
                    ++counts_[lv.geomIdx[k]].dirtyEvictions;
            }
        }
    }
}

void
StackSimulator::finishRef()
{
    for (Level &lv : levels_) {
        const std::size_t numSets = lv.head.size();
        // Blocks sitting beyond depth A that still carry a dirty bit
        // were evicted dirty and never missed again.
        for (std::size_t set = 0; set < numSets; ++set) {
            std::uint32_t pos = 0;
            for (std::int32_t cur = lv.head[set]; cur != kNull;
                 cur = lv.next[cur], ++pos) {
                const std::uint32_t dm = lv.dirty[cur];
                if (dm == 0)
                    continue;
                for (std::uint32_t m = dm; m != 0; m &= m - 1) {
                    const std::uint32_t k =
                        static_cast<std::uint32_t>(std::countr_zero(m));
                    if (pos >= geoms_[lv.geomIdx[k]].assoc)
                        ++counts_[lv.geomIdx[k]].dirtyEvictions;
                }
            }
        }
    }
}

void
StackSimulator::finish()
{
    if (finished_)
        return;
    finished_ = true;

    if (impl_ == StackSimImpl::Vectorized)
        finishFast();
    else
        finishRef();

    // Every fill either grew occupancy (until the set was full) or
    // evicted: evictions = fills - final occupancy.
    for (Level &lv : levels_) {
        const std::size_t numSets = lv.len.size();
        for (const std::uint32_t g : lv.geomIdx) {
            const std::uint32_t a = geoms_[g].assoc;
            Counter resident = 0;
            for (std::size_t set = 0; set < numSets; ++set)
                resident += std::min<Counter>(a, lv.len[set]);
            GeomCounts &gc = counts_[g];
            const Counter fills =
                gc.readMissTotal() + gc.writeMissTotal();
            PC_ASSERT(fills >= resident, "stack sim: fills < residents");
            gc.evictions = fills - resident;
        }
    }
}

const StackSimulator::GeomCounts &
StackSimulator::counts(std::uint32_t log2Sets, std::uint32_t assoc) const
{
    PC_ASSERT(finished_, "stack sim: counts() before finish()");
    for (std::size_t g = 0; g < geoms_.size(); ++g) {
        if (geoms_[g].log2Sets == log2Sets && geoms_[g].assoc == assoc)
            return counts_[g];
    }
    PC_PANIC("stack sim: geometry (2^", log2Sets, " sets, ", assoc,
             "-way) was not registered");
}

} // namespace pipecache::cache
