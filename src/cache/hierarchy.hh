/**
 * @file
 * Two-level cache hierarchy with split L1 (Figure 1 of the paper).
 *
 * Two operating modes:
 *
 *  - *flat-penalty* (the paper's L1 experiments): every L1 miss costs
 *    a constant number of cycles, standing in for an L2 that always
 *    hits;
 *  - *full hierarchy*: L1 misses probe a unified L2; L2 misses go to
 *    main memory with a refill penalty. This is the substrate the
 *    paper's Figure 1 architecture actually has, provided for
 *    downstream use and the multiprogramming ablation.
 */

#ifndef PIPECACHE_CACHE_HIERARCHY_HH
#define PIPECACHE_CACHE_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <optional>

#include "cache/cache.hh"
#include "cache/memory.hh"
#include "cache/three_c.hh"
#include "util/units.hh"

namespace pipecache::obs {
class StatsRegistry;
} // namespace pipecache::obs

namespace pipecache::cache {

/** Hierarchy configuration. */
struct HierarchyConfig
{
    CacheConfig l1i{.name = "L1-I",
                    .sizeBytes = 16 * 1024,
                    .blockBytes = 16,
                    .assoc = 1};
    CacheConfig l1d{.name = "L1-D",
                    .sizeBytes = 16 * 1024,
                    .blockBytes = 16,
                    .assoc = 1};

    /** Flat L1 miss penalty in cycles; disables the L2 model. */
    std::optional<std::uint32_t> flatPenalty = 10;

    /** Full-hierarchy parameters (used when flatPenalty is empty). */
    CacheConfig l2{.name = "L2",
                   .sizeBytes = 512 * 1024,
                   .blockBytes = 64,
                   .assoc = 1};
    /** L1-miss/L2-hit service time. */
    std::uint32_t l2HitCycles = 10;
    /** Additional cycles for an L2 miss (memory refill). */
    std::uint32_t memoryCycles = 40;

    /**
     * Run 3C (compulsory/capacity/conflict) classifiers alongside the
     * L1s. Passive — simulated results are unchanged — but costs a
     * fully-associative shadow lookup per access, so it is off unless
     * the observability layer asks (obs::classify3CEnabled()).
     */
    bool classify3C = false;
};

/** Per-side stall accounting. */
struct HierarchyStats
{
    Counter l1iStallCycles = 0;
    Counter l1dStallCycles = 0;
    Counter l2Misses = 0;
};

/** The two-level hierarchy. */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig &config);

    /** Instruction fetch; returns stall cycles (0 on hit). */
    std::uint32_t accessInst(Addr addr);

    /** Data access; returns stall cycles (0 on hit). */
    std::uint32_t accessData(Addr addr, bool write);

    /**
     * Write-through store that retires via a write buffer: probes and
     * updates L1-D (hit data is written in place) but charges no miss
     * stall — the buffer absorbs the downstream write. Pair with a
     * no-write-allocate L1-D configuration.
     */
    void accessDataBuffered(Addr addr);

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    /** Null in flat-penalty mode. */
    const Cache *l2() const { return l2_.get(); }

    const HierarchyStats &stats() const { return stats_; }
    const HierarchyConfig &config() const { return config_; }

    /** 3C counters for the L1s; null unless config.classify3C. */
    const ThreeCStats *l1iThreeC() const
    {
        return classifyI_ ? &classifyI_->stats() : nullptr;
    }
    const ThreeCStats *l1dThreeC() const
    {
        return classifyD_ ? &classifyD_->stats() : nullptr;
    }

    /**
     * Publish accumulated counters into @p reg under `cache.l1i.*`,
     * `cache.l1d.*` and `cache.l2.*`. Call once per finished
     * simulation; deltas are the full lifetime totals of this
     * hierarchy instance.
     */
    void publishStats(obs::StatsRegistry &reg) const;

    /** Invalidate all levels (keeps statistics). */
    void flush();

  private:
    std::uint32_t missCycles(Addr addr, bool write);

    HierarchyConfig config_;
    Cache l1i_;
    Cache l1d_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<ThreeCClassifier> classifyI_;
    std::unique_ptr<ThreeCClassifier> classifyD_;
    HierarchyStats stats_;
};

/**
 * Publish split-L1 counters under `cache.l1i.*` / `cache.l1d.*` from
 * plain aggregates, exactly as CacheHierarchy::publishStats does for
 * a flat-penalty hierarchy. Shared with the factored evaluator so
 * both evaluation paths emit byte-identical registries.
 */
void publishL1Stats(obs::StatsRegistry &reg, const CacheStats &l1i,
                    Counter l1iStallCycles, const CacheStats &l1d,
                    Counter l1dStallCycles);

} // namespace pipecache::cache

#endif // PIPECACHE_CACHE_HIERARCHY_HH
