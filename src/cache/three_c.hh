/**
 * @file
 * 3C miss classification (Hill's compulsory/capacity/conflict model).
 *
 * The classic decomposition the cache literature of the paper's era
 * used to explain miss curves:
 *
 *  - compulsory: first reference to a block ever;
 *  - capacity:  missed even in a fully-associative LRU cache of the
 *               same total size;
 *  - conflict:  hit in the fully-associative shadow but missed in the
 *               real (set-indexed) cache.
 *
 * Used by bench_abl_3c to explain the shapes of Figures 3/4/8 (why
 * small caches respond to doubling, what the multiprogramming quantum
 * does, and why short traces look compulsory-bound).
 */

#ifndef PIPECACHE_CACHE_THREE_C_HH
#define PIPECACHE_CACHE_THREE_C_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "cache/cache.hh"
#include "util/units.hh"

namespace pipecache::cache {

/** Miss class of one access. */
enum class MissClass : std::uint8_t
{
    Hit,
    Compulsory,
    Capacity,
    Conflict,
};

/** Classification counters. */
struct ThreeCStats
{
    Counter accesses = 0;
    Counter compulsory = 0;
    Counter capacity = 0;
    Counter conflict = 0;

    Counter misses() const { return compulsory + capacity + conflict; }

    double fraction(Counter n) const
    {
        return misses() == 0 ? 0.0
                             : static_cast<double>(n) /
                                   static_cast<double>(misses());
    }
};

/**
 * The classification machinery on its own: a fully-associative LRU
 * shadow of the real cache's capacity plus a first-touch set. Feed it
 * every access along with the real cache's hit/miss outcome and it
 * assigns the 3C class. Owning no cache of its own, it can ride
 * alongside any existing cache (CacheHierarchy uses it for the
 * observability layer's classified miss counters).
 */
class ThreeCClassifier
{
  public:
    /** Shadow geometry mirrors the real cache: @p size_bytes capacity
     *  in @p block_bytes blocks. */
    ThreeCClassifier(std::uint64_t size_bytes, std::uint32_t block_bytes);

    /** Classify one access whose real-cache outcome was @p real_hit. */
    MissClass classify(Addr addr, bool real_hit);

    const ThreeCStats &stats() const { return stats_; }

  private:
    /** Fully-associative LRU over block addresses; true on hit. */
    bool shadowAccess(Addr block);

    ThreeCStats stats_;

    std::uint64_t blockShift_;
    std::size_t shadowCapacity_;
    /** LRU list of resident blocks (front = most recent). */
    std::list<Addr> shadowLru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> shadowMap_;
    /** Every block ever touched. */
    std::unordered_set<Addr> touched_;
};

/**
 * A cache bundled with its classifier; classifies every access.
 */
class ThreeCCache
{
  public:
    explicit ThreeCCache(const CacheConfig &config);

    /** Access and classify. */
    MissClass access(Addr addr, bool write);

    const ThreeCStats &stats() const { return classifier_.stats(); }
    const Cache &cache() const { return cache_; }

  private:
    Cache cache_;
    ThreeCClassifier classifier_;
};

} // namespace pipecache::cache

#endif // PIPECACHE_CACHE_THREE_C_HH
