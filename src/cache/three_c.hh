/**
 * @file
 * 3C miss classification (Hill's compulsory/capacity/conflict model).
 *
 * The classic decomposition the cache literature of the paper's era
 * used to explain miss curves:
 *
 *  - compulsory: first reference to a block ever;
 *  - capacity:  missed even in a fully-associative LRU cache of the
 *               same total size;
 *  - conflict:  hit in the fully-associative shadow but missed in the
 *               real (set-indexed) cache.
 *
 * Used by bench_abl_3c to explain the shapes of Figures 3/4/8 (why
 * small caches respond to doubling, what the multiprogramming quantum
 * does, and why short traces look compulsory-bound).
 */

#ifndef PIPECACHE_CACHE_THREE_C_HH
#define PIPECACHE_CACHE_THREE_C_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "cache/cache.hh"
#include "util/units.hh"

namespace pipecache::cache {

/** Miss class of one access. */
enum class MissClass : std::uint8_t
{
    Hit,
    Compulsory,
    Capacity,
    Conflict,
};

/** Classification counters. */
struct ThreeCStats
{
    Counter accesses = 0;
    Counter compulsory = 0;
    Counter capacity = 0;
    Counter conflict = 0;

    Counter misses() const { return compulsory + capacity + conflict; }

    double fraction(Counter n) const
    {
        return misses() == 0 ? 0.0
                             : static_cast<double>(n) /
                                   static_cast<double>(misses());
    }
};

/**
 * A cache wrapped with a fully-associative LRU shadow of the same
 * capacity plus a first-touch set; classifies every access.
 */
class ThreeCCache
{
  public:
    explicit ThreeCCache(const CacheConfig &config);

    /** Access and classify. */
    MissClass access(Addr addr, bool write);

    const ThreeCStats &stats() const { return stats_; }
    const Cache &cache() const { return cache_; }

  private:
    /** Fully-associative LRU over block addresses; true on hit. */
    bool shadowAccess(Addr block);

    Cache cache_;
    ThreeCStats stats_;

    std::uint64_t blockShift_;
    std::size_t shadowCapacity_;
    /** LRU list of resident blocks (front = most recent). */
    std::list<Addr> shadowLru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> shadowMap_;
    /** Every block ever touched. */
    std::unordered_set<Addr> touched_;
};

} // namespace pipecache::cache

#endif // PIPECACHE_CACHE_THREE_C_HH
