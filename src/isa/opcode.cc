#include "isa/opcode.hh"

#include "util/logging.hh"

namespace pipecache::isa {

OpClass
opClass(Opcode op)
{
    switch (op) {
      case Opcode::LW:
      case Opcode::LH:
      case Opcode::LB:
      case Opcode::LWC1:
        return OpClass::Load;
      case Opcode::SW:
      case Opcode::SH:
      case Opcode::SB:
      case Opcode::SWC1:
        return OpClass::Store;
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLEZ:
      case Opcode::BGTZ:
        return OpClass::CondBranch;
      case Opcode::J:
      case Opcode::JAL:
        return OpClass::Jump;
      case Opcode::JR:
      case Opcode::JALR:
        return OpClass::IndirectJump;
      case Opcode::NOP:
      case Opcode::SYSCALL:
        return OpClass::Other;
      default:
        return OpClass::Alu;
    }
}

bool
isLoad(Opcode op)
{
    return opClass(op) == OpClass::Load;
}

bool
isStore(Opcode op)
{
    return opClass(op) == OpClass::Store;
}

bool
isMem(Opcode op)
{
    OpClass c = opClass(op);
    return c == OpClass::Load || c == OpClass::Store;
}

bool
isCti(Opcode op)
{
    OpClass c = opClass(op);
    return c == OpClass::CondBranch || c == OpClass::Jump ||
           c == OpClass::IndirectJump;
}

bool
isCondBranch(Opcode op)
{
    return opClass(op) == OpClass::CondBranch;
}

bool
isDirectJump(Opcode op)
{
    return opClass(op) == OpClass::Jump;
}

bool
isIndirectJump(Opcode op)
{
    return opClass(op) == OpClass::IndirectJump;
}

bool
isCall(Opcode op)
{
    return op == Opcode::JAL || op == Opcode::JALR;
}

std::string_view
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ADDU: return "addu";
      case Opcode::SUBU: return "subu";
      case Opcode::AND: return "and";
      case Opcode::OR: return "or";
      case Opcode::XOR: return "xor";
      case Opcode::SLT: return "slt";
      case Opcode::ADDIU: return "addiu";
      case Opcode::ANDI: return "andi";
      case Opcode::ORI: return "ori";
      case Opcode::SLTI: return "slti";
      case Opcode::LUI: return "lui";
      case Opcode::SLL: return "sll";
      case Opcode::SRL: return "srl";
      case Opcode::SRA: return "sra";
      case Opcode::MULT: return "mult";
      case Opcode::DIV: return "div";
      case Opcode::MFLO: return "mflo";
      case Opcode::MFHI: return "mfhi";
      case Opcode::ADDS: return "add.s";
      case Opcode::MULS: return "mul.s";
      case Opcode::ADDD: return "add.d";
      case Opcode::MULD: return "mul.d";
      case Opcode::LW: return "lw";
      case Opcode::LH: return "lh";
      case Opcode::LB: return "lb";
      case Opcode::LWC1: return "lwc1";
      case Opcode::SW: return "sw";
      case Opcode::SH: return "sh";
      case Opcode::SB: return "sb";
      case Opcode::SWC1: return "swc1";
      case Opcode::BEQ: return "beq";
      case Opcode::BNE: return "bne";
      case Opcode::BLEZ: return "blez";
      case Opcode::BGTZ: return "bgtz";
      case Opcode::J: return "j";
      case Opcode::JAL: return "jal";
      case Opcode::JR: return "jr";
      case Opcode::JALR: return "jalr";
      case Opcode::NOP: return "nop";
      case Opcode::SYSCALL: return "syscall";
      default:
        PC_PANIC("opcodeName: bad opcode ", static_cast<int>(op));
    }
}

} // namespace pipecache::isa
