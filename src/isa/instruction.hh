/**
 * @file
 * Architectural instruction model: registers read/written, memory
 * behaviour, and the annotations the synthetic workload generator
 * attaches for trace production.
 */

#ifndef PIPECACHE_ISA_INSTRUCTION_HH
#define PIPECACHE_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <string>

#include "isa/opcode.hh"

namespace pipecache::isa {

/** Architectural register number (0-31 integer, 32-63 FP). */
using Reg = std::uint8_t;

/** Register name constants following MIPS software conventions. */
namespace reg {
inline constexpr Reg zero = 0;   //!< hardwired zero
inline constexpr Reg v0 = 2;     //!< result register
inline constexpr Reg a0 = 4;     //!< first argument register
inline constexpr Reg t0 = 8;     //!< first caller-saved temporary
inline constexpr Reg s0 = 16;    //!< first callee-saved register
inline constexpr Reg gp = 28;    //!< global area pointer (64 KB window)
inline constexpr Reg sp = 29;    //!< stack pointer
inline constexpr Reg fp = 30;    //!< frame pointer
inline constexpr Reg ra = 31;    //!< return address
inline constexpr Reg f0 = 32;    //!< first FP register
inline constexpr Reg numRegs = 64;
} // namespace reg

/**
 * Locality class of a memory reference, fixed at code-generation time
 * by the synthetic program generator and consumed by the data-address
 * generator. Mirrors the reference mix discussed in Section 3.2 of the
 * paper (gp-area globals, sp-relative locals, array/pointer data).
 */
enum class AddrClass : std::uint8_t
{
    None,    //!< not a memory instruction
    Stack,   //!< sp-relative local variable
    Global,  //!< gp-relative static/global scalar
    Array,   //!< sequential array element walk
    Heap,    //!< pointer-chased heap object
};

/**
 * One instruction of the MIPS subset.
 *
 * Fields follow a uniform three-register shape; unused registers are
 * reg::zero. For memory instructions @c src1 is the address register
 * and loads write @c dest. The @c stream field selects which synthetic
 * data stream an Array/Heap reference draws from.
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    Reg dest = reg::zero;
    Reg src1 = reg::zero;
    Reg src2 = reg::zero;
    std::int32_t imm = 0;

    /** Memory locality class (None unless isMem()). */
    AddrClass addrClass = AddrClass::None;
    /** Data-stream index for Array/Heap references. */
    std::uint8_t stream = 0;

    /** Register written, or reg::zero if none. */
    Reg destReg() const;

    /** Registers read (reg::zero entries mean "no operand"). */
    std::array<Reg, 2> srcRegs() const;

    /** True if this instruction reads register r (r != zero). */
    bool reads(Reg r) const;

    /** True if this instruction writes register r (r != zero). */
    bool writes(Reg r) const;

    /** Address register for loads/stores (src1). */
    Reg addrReg() const;

    /** Assembler-like rendering for debugging and tests. */
    std::string toString() const;

    /** Factory helpers. */
    static Instruction makeNop();
    static Instruction makeAlu(Opcode op, Reg dest, Reg src1, Reg src2);
    static Instruction makeAluImm(Opcode op, Reg dest, Reg src1,
                                  std::int32_t imm);
    static Instruction makeLoad(Reg dest, Reg addr_reg, std::int32_t offset,
                                AddrClass cls, std::uint8_t stream = 0);
    static Instruction makeStore(Reg value, Reg addr_reg, std::int32_t offset,
                                 AddrClass cls, std::uint8_t stream = 0);
    static Instruction makeBranch(Opcode op, Reg src1, Reg src2);
    static Instruction makeJump(Opcode op);
    static Instruction makeJumpRegister(Opcode op, Reg target_reg);
};

} // namespace pipecache::isa

#endif // PIPECACHE_ISA_INSTRUCTION_HH
