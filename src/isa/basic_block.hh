/**
 * @file
 * Basic blocks and control-flow terminators.
 *
 * Programs are stored in the canonical zero-delay-slot form the paper
 * starts from (Section 3.1): every block's control-transfer
 * instruction, if any, is its last instruction, and no delay-slot
 * padding exists. The branch delay-slot post-processor (sched/) derives
 * scheduled layouts from this form.
 */

#ifndef PIPECACHE_ISA_BASIC_BLOCK_HH
#define PIPECACHE_ISA_BASIC_BLOCK_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "isa/instruction.hh"

namespace pipecache::isa {

/** Index of a basic block within its Program. */
using BlockId = std::uint32_t;

inline constexpr BlockId invalidBlock =
    std::numeric_limits<BlockId>::max();

/** How a basic block transfers control. */
enum class TermKind : std::uint8_t
{
    FallThrough,   //!< no CTI; execution continues at fallthrough()
    CondBranch,    //!< conditional: target() if taken else fallthrough()
    Jump,          //!< unconditional direct jump to target()
    Call,          //!< jal: target() is callee, fallthrough() resumes
    Return,        //!< jr ra: continuation comes from the call stack
    Switch,        //!< jr via jump table: one of switchTargets()
};

/**
 * Execution-behaviour annotation of a conditional branch, attached by
 * the program generator and consumed by the trace executor. Backward
 * branches model loop back-edges (taken until the trip count runs
 * out); forward branches are taken per-execution with probability
 * takenProb.
 */
struct BranchProfile
{
    bool backward = false;
    /** Forward branches: probability of being taken on each execution. */
    double takenProb = 0.5;
    /** Backward branches: mean loop trip count (>= 1). */
    double meanTrip = 1.0;
};

/**
 * A basic block: straight-line instructions, with the terminating CTI
 * (if the block has one) as the final instruction.
 */
class BasicBlock
{
  public:
    BasicBlock() = default;

    /** Instructions, including the terminator CTI (if any) last. */
    std::vector<Instruction> insts;

    TermKind term = TermKind::FallThrough;

    /** Successor metadata; which fields are valid depends on term. */
    BlockId target = invalidBlock;
    BlockId fallthrough = invalidBlock;
    std::vector<BlockId> switchTargets;

    BranchProfile profile;

    /** Number of instructions (including the CTI). */
    std::size_t size() const { return insts.size(); }

    /** True if the block ends with a control transfer instruction. */
    bool hasCti() const { return term != TermKind::FallThrough; }

    /** The terminating CTI; panics if the block has none. */
    const Instruction &cti() const;

    /** Number of non-CTI instructions. */
    std::size_t bodySize() const;

    /**
     * Verify internal consistency: the last instruction matches the
     * terminator kind, no CTI appears mid-block, successor fields are
     * populated as the kind requires. Panics on violation.
     */
    void checkInvariants(BlockId self, std::size_t num_blocks) const;
};

} // namespace pipecache::isa

#endif // PIPECACHE_ISA_BASIC_BLOCK_HH
