/**
 * @file
 * Synthetic MIPS program generator.
 *
 * The paper's experiments run on proprietary pixie traces of 16 MIPS
 * R2000 benchmarks. We substitute synthetic programs whose
 * *mechanisms* reproduce the statistical structure those traces expose
 * to the cache/pipeline experiments:
 *
 *  - instruction mix (loads/stores/CTIs) per Table 1;
 *  - basic-block length distribution (mean ~ 1/ctiFrac) with hotter
 *    loop bodies longer than cold straight-line code, so the static
 *    CTI density exceeds the dynamic one as in real MIPS code;
 *  - branch-site structure: loop back-edges (backward, mostly taken),
 *    biased forward branches, direct calls, and register-indirect
 *    returns/switches (~10 % of CTIs per the paper);
 *  - the register-reuse structure behind Figures 6/7: most loads
 *    address via gp (set once at startup) or sp (set at procedure
 *    entry), so the unbounded independence distance e is large, while
 *    pointer/array loads recompute their address register shortly
 *    before use;
 *  - load-to-use distances drawn from a short geometric, bounding the
 *    statically hideable delay once basic-block limits apply;
 *  - condition computation immediately before a branch with
 *    probability branchFeedProb, which limits how many delay slots the
 *    post-processor can fill from before the CTI (the paper's 54 %
 *    first-slot fill rate).
 */

#ifndef PIPECACHE_ISA_PROGRAM_GENERATOR_HH
#define PIPECACHE_ISA_PROGRAM_GENERATOR_HH

#include <cstdint>
#include <string>

#include "isa/program.hh"
#include "util/random.hh"

namespace pipecache::isa {

/** Tunable knobs for one synthetic program. */
struct GenProfile
{
    std::string name = "synthetic";
    std::uint64_t seed = 1;

    /** Approximate static code size in instructions. */
    std::uint32_t staticInsts = 4000;
    std::uint32_t numProcs = 10;

    /** Dynamic instruction-mix targets (fractions of all insts). */
    double loadFrac = 0.25;
    double storeFrac = 0.09;
    double ctiFrac = 0.13;
    /** Fraction of ALU/load traffic in the FP register bank. */
    double fpFrac = 0.0;

    /** Fraction of generated structures that are loops. */
    double loopFrac = 0.35;
    /** Probability a segment is a call (if a callee exists). */
    double callFrac = 0.10;
    /** Probability a procedure contains a switch (jr jump table). */
    double switchFrac = 0.15;
    /** Mean loop trip count (geometric, >= 1). */
    double meanTrip = 10.0;
    /** Probability the instruction before a branch computes its
     *  condition (blocks delay-slot filling from before the CTI). */
    double branchFeedProb = 0.61;

    /** Memory addressing mix over loads/stores (must sum to 1). */
    double stackFrac = 0.30;
    double globalFrac = 0.35;
    double arrayFrac = 0.20;
    double heapFrac = 0.15;
    /** Number of distinct array/heap data streams. */
    std::uint32_t numStreams = 4;

    /** Geometric parameter for load-to-use distance (higher = closer). */
    double consumerGeoP = 0.60;
    /** Probability a load gets no nearby consumer at all. */
    double consumerNoneProb = 0.10;
    /** Probability an array/heap load computes its address register
     *  immediately before the load (indexed access / pointer chase:
     *  c = 0, the un-hideable tail of Figures 6/7). */
    double nearAddrProb = 0.50;
    /** Load/store emission boost compensating for the compare+CTI
     *  overhead of hot latch blocks diluting the body mix. */
    double mixBoost = 1.15;

    /** Probability the condition is computed one instruction earlier
     *  (limits hoisting to a single slot). */
    double branchFeedNearProb = 0.18;

    /** Block-length multiplier for code inside loops (hot code).
     *  Structures contribute roughly two block bodies per CTI, so
     *  these multipliers sit well below 1 to land the dynamic CTI
     *  fraction on target while keeping hot blocks longer than cold
     *  ones (raising static CTI density above dynamic, as in real
     *  MIPS code). */
    double hotBlockScale = 0.80;
    /** Block-length multiplier for straight-line (cold) code. */
    double coldBlockScale = 0.45;
    /** Extra CTI-density factor compensating for the ~2 block bodies
     *  each control structure contributes per CTI (drawBodyLen only;
     *  the instruction-mix normalization keeps using ctiFrac). */
    double ctiStructureBoost = 1.30;
    /** Probability an if has an else part (the jump over the else is
     *  a predicted-taken CTI and a code-expansion site). */
    double elseProb = 0.55;
};

/**
 * Generate a synthetic program from a profile. The result is validated
 * and laid out before being returned.
 */
Program generateProgram(const GenProfile &profile);

} // namespace pipecache::isa

#endif // PIPECACHE_ISA_PROGRAM_GENERATOR_HH
