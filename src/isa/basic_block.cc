#include "isa/basic_block.hh"

#include "util/logging.hh"

namespace pipecache::isa {

const Instruction &
BasicBlock::cti() const
{
    PC_ASSERT(hasCti(), "cti() on a fall-through block");
    PC_ASSERT(!insts.empty(), "CTI block with no instructions");
    return insts.back();
}

std::size_t
BasicBlock::bodySize() const
{
    return hasCti() ? insts.size() - 1 : insts.size();
}

void
BasicBlock::checkInvariants(BlockId self, std::size_t num_blocks) const
{
    auto check_target = [&](BlockId t, const char *what) {
        PC_ASSERT(t != invalidBlock && t < num_blocks,
                  "block ", self, ": bad ", what, " successor");
    };

    // No CTI may appear before the last instruction.
    for (std::size_t i = 0; i + 1 < insts.size(); ++i) {
        PC_ASSERT(!isCti(insts[i].op),
                  "block ", self, ": CTI at non-terminal position ", i);
    }

    switch (term) {
      case TermKind::FallThrough:
        PC_ASSERT(insts.empty() || !isCti(insts.back().op),
                  "block ", self, ": fall-through block ends in a CTI");
        check_target(fallthrough, "fall-through");
        break;
      case TermKind::CondBranch:
        PC_ASSERT(!insts.empty() && isCondBranch(insts.back().op),
                  "block ", self, ": CondBranch without branch CTI");
        check_target(target, "branch target");
        check_target(fallthrough, "branch fall-through");
        break;
      case TermKind::Jump:
        PC_ASSERT(!insts.empty() && isDirectJump(insts.back().op) &&
                  !isCall(insts.back().op),
                  "block ", self, ": Jump without j CTI");
        check_target(target, "jump target");
        break;
      case TermKind::Call:
        PC_ASSERT(!insts.empty() && isCall(insts.back().op),
                  "block ", self, ": Call without jal/jalr CTI");
        check_target(target, "call target");
        check_target(fallthrough, "call return site");
        break;
      case TermKind::Return:
        PC_ASSERT(!insts.empty() && isIndirectJump(insts.back().op),
                  "block ", self, ": Return without jr CTI");
        break;
      case TermKind::Switch:
        PC_ASSERT(!insts.empty() && isIndirectJump(insts.back().op),
                  "block ", self, ": Switch without jr CTI");
        PC_ASSERT(!switchTargets.empty(),
                  "block ", self, ": Switch with no targets");
        for (BlockId t : switchTargets)
            check_target(t, "switch");
        break;
    }

    if (term == TermKind::CondBranch) {
        PC_ASSERT(profile.meanTrip >= 1.0,
                  "block ", self, ": meanTrip < 1");
        PC_ASSERT(profile.takenProb >= 0.0 && profile.takenProb <= 1.0,
                  "block ", self, ": takenProb out of range");
    }
}

} // namespace pipecache::isa
