#include "isa/instruction.hh"

#include <sstream>

#include "util/logging.hh"

namespace pipecache::isa {

Reg
Instruction::destReg() const
{
    switch (opClass(op)) {
      case OpClass::Alu:
      case OpClass::Load:
        return dest;
      case OpClass::Jump:
      case OpClass::IndirectJump:
        // jal/jalr write ra; j/jr write nothing.
        return isCall(op) ? reg::ra : reg::zero;
      default:
        return reg::zero;
    }
}

std::array<Reg, 2>
Instruction::srcRegs() const
{
    switch (opClass(op)) {
      case OpClass::Alu:
      case OpClass::CondBranch:
        return {src1, src2};
      case OpClass::Load:
        return {src1, reg::zero};
      case OpClass::Store:
        // Stores read the address register and the value register.
        return {src1, src2};
      case OpClass::IndirectJump:
        return {src1, reg::zero};
      default:
        return {reg::zero, reg::zero};
    }
}

bool
Instruction::reads(Reg r) const
{
    if (r == reg::zero)
        return false;
    auto srcs = srcRegs();
    return srcs[0] == r || srcs[1] == r;
}

bool
Instruction::writes(Reg r) const
{
    return r != reg::zero && destReg() == r;
}

Reg
Instruction::addrReg() const
{
    PC_ASSERT(isMem(op), "addrReg on non-memory instruction");
    return src1;
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);
    auto rname = [](Reg r) { return "r" + std::to_string(int{r}); };
    switch (opClass(op)) {
      case OpClass::Alu:
        os << " " << rname(dest) << ", " << rname(src1);
        if (src2 != reg::zero)
            os << ", " << rname(src2);
        else if (imm != 0 || op == Opcode::ADDIU || op == Opcode::LUI)
            os << ", " << imm;
        break;
      case OpClass::Load:
        os << " " << rname(dest) << ", " << imm << "(" << rname(src1) << ")";
        break;
      case OpClass::Store:
        os << " " << rname(src2) << ", " << imm << "(" << rname(src1) << ")";
        break;
      case OpClass::CondBranch:
        os << " " << rname(src1) << ", " << rname(src2) << ", <target>";
        break;
      case OpClass::Jump:
        os << " <target>";
        break;
      case OpClass::IndirectJump:
        os << " " << rname(src1);
        break;
      case OpClass::Other:
        break;
    }
    return os.str();
}

Instruction
Instruction::makeNop()
{
    return {};
}

Instruction
Instruction::makeAlu(Opcode op, Reg dest, Reg src1, Reg src2)
{
    PC_ASSERT(opClass(op) == OpClass::Alu, "makeAlu with non-ALU opcode");
    Instruction inst;
    inst.op = op;
    inst.dest = dest;
    inst.src1 = src1;
    inst.src2 = src2;
    return inst;
}

Instruction
Instruction::makeAluImm(Opcode op, Reg dest, Reg src1, std::int32_t imm)
{
    PC_ASSERT(opClass(op) == OpClass::Alu, "makeAluImm with non-ALU opcode");
    Instruction inst;
    inst.op = op;
    inst.dest = dest;
    inst.src1 = src1;
    inst.imm = imm;
    return inst;
}

Instruction
Instruction::makeLoad(Reg dest, Reg addr_reg, std::int32_t offset,
                      AddrClass cls, std::uint8_t stream)
{
    Instruction inst;
    inst.op = Opcode::LW;
    inst.dest = dest;
    inst.src1 = addr_reg;
    inst.imm = offset;
    inst.addrClass = cls;
    inst.stream = stream;
    return inst;
}

Instruction
Instruction::makeStore(Reg value, Reg addr_reg, std::int32_t offset,
                       AddrClass cls, std::uint8_t stream)
{
    Instruction inst;
    inst.op = Opcode::SW;
    inst.src1 = addr_reg;
    inst.src2 = value;
    inst.imm = offset;
    inst.addrClass = cls;
    inst.stream = stream;
    return inst;
}

Instruction
Instruction::makeBranch(Opcode op, Reg src1, Reg src2)
{
    PC_ASSERT(isCondBranch(op), "makeBranch with non-branch opcode");
    Instruction inst;
    inst.op = op;
    inst.src1 = src1;
    inst.src2 = src2;
    return inst;
}

Instruction
Instruction::makeJump(Opcode op)
{
    PC_ASSERT(isDirectJump(op), "makeJump with non-jump opcode");
    Instruction inst;
    inst.op = op;
    return inst;
}

Instruction
Instruction::makeJumpRegister(Opcode op, Reg target_reg)
{
    PC_ASSERT(isIndirectJump(op), "makeJumpRegister with non-jr opcode");
    Instruction inst;
    inst.op = op;
    inst.src1 = target_reg;
    return inst;
}

} // namespace pipecache::isa
