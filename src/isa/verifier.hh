/**
 * @file
 * Whole-program static verifier — a deeper pass than
 * Program::validate()'s structural checks.
 *
 * Checks performed:
 *  - reachability: every block is reachable from the entry through
 *    fall-through/branch/call/return edges (return edges approximated
 *    by call-site continuations);
 *  - register liveness at entry: no path-insensitive read of a
 *    general register that no reachable block could have defined
 *    (ABI registers gp/sp/ra and the zero register are precious and
 *    assumed initialized);
 *  - call discipline: calls target procedure entries; return blocks
 *    exist on every procedure's reachable paths.
 *
 * Used by tests as a generator-quality gate and available to users
 * building programs by hand.
 */

#ifndef PIPECACHE_ISA_VERIFIER_HH
#define PIPECACHE_ISA_VERIFIER_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace pipecache::isa {

/** One verifier finding. */
struct VerifierIssue
{
    enum class Kind : std::uint8_t
    {
        UnreachableBlock,
        ReadBeforeAnyDef,
        CallToNonEntry,
        ProcedureWithoutReturn,
    };

    Kind kind;
    BlockId block = invalidBlock;
    Reg reg = reg::zero;
    std::string message;
};

/** Verification report. */
struct VerifierReport
{
    std::vector<VerifierIssue> issues;
    std::size_t reachableBlocks = 0;

    bool clean() const { return issues.empty(); }

    /** Issues of one kind. */
    std::size_t count(VerifierIssue::Kind kind) const;
};

/** Run all checks on a validated, laid-out program. */
VerifierReport verifyProgram(const Program &program);

} // namespace pipecache::isa

#endif // PIPECACHE_ISA_VERIFIER_HH
