#include "isa/program_generator.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pipecache::isa {

namespace {

/** Register assignments the generator reserves for specific roles. */
namespace genreg {
inline constexpr Reg firstTemp = 8;     // r8..r15 rotating temporaries
inline constexpr Reg numTemps = 8;
inline constexpr Reg firstHeapPtr = 16; // r16..r19 heap-chase pointers
inline constexpr Reg numHeapPtrs = 4;
inline constexpr Reg firstArrPtr = 20;  // r20..r23 array walk pointers
inline constexpr Reg numArrPtrs = 4;
inline constexpr Reg stable0 = 24;      // rarely-written condition regs
inline constexpr Reg stable1 = 25;
inline constexpr Reg firstScratchPtr = 4; // a0..a3 as computed-address regs
inline constexpr Reg numScratchPtrs = 4;
inline constexpr Reg firstFpTemp = reg::f0; // f0..f7 rotating FP temps
inline constexpr Reg numFpTemps = 8;
} // namespace genreg

class Generator
{
  public:
    explicit Generator(const GenProfile &profile)
        : prof_(profile), rng_(profile.seed)
    {
        PC_ASSERT(prof_.numProcs >= 2, "need at least two procedures");
        PC_ASSERT(prof_.ctiFrac > 0.0 && prof_.ctiFrac < 0.5,
                  "ctiFrac out of range");
        const double mix = prof_.stackFrac + prof_.globalFrac +
                           prof_.arrayFrac + prof_.heapFrac;
        PC_ASSERT(std::abs(mix - 1.0) < 1e-6,
                  "memory addressing mix must sum to 1, got ", mix);
    }

    Program run();

  private:
    // ---- block construction ------------------------------------------
    /** Start a fresh current block. */
    void openBlock();
    /** Append an instruction to the current block. */
    void emit(const Instruction &inst);
    /** Close the current block with the given terminator; returns id. */
    BlockId closeBlock(TermKind term, const Instruction &cti);
    /** Close as a fall-through to the next block (no CTI). */
    BlockId closeFallThrough();

    /** Id the next closed block will get. */
    BlockId nextId() const
    {
        return static_cast<BlockId>(prog_.numBlocks());
    }

    // ---- structure generation ----------------------------------------
    void genProc(std::uint32_t proc);
    void genBody(int depth);
    void genSegment(int depth);
    void genLoop(int depth);
    void genIf(int depth);
    void genSwitch(int depth);
    void genCall();

    // ---- instruction filling -----------------------------------------
    void fillBody(std::size_t n);
    void emitBodyInst();
    void emitLoad();
    void emitStore();
    void emitAlu();
    Instruction condBranchCti();

    Reg nextTemp();
    Reg nextFpTemp();
    Reg nextScratchPtr();
    Reg recentReg(bool fp);
    std::size_t drawBodyLen();

    // ---- state ---------------------------------------------------------
    const GenProfile &prof_;
    Rng rng_;
    Program prog_;

    BasicBlock cur_;
    bool curOpen_ = false;

    std::vector<BlockId> procEntry_;
    /** Calls whose callee procedure is generated later. */
    std::vector<std::pair<BlockId, std::uint32_t>> callFixups_;

    std::int64_t budget_ = 0;
    std::uint32_t curProc_ = 0;
    int loopDepth_ = 0;
    bool procIsLeaf_ = false;
    bool utilityProc_ = false;

    int tempIdx_ = 0;
    int fpTempIdx_ = 0;
    int scratchIdx_ = 0;
    double loadCarry_ = 0.0;
    double storeCarry_ = 0.0;
    std::vector<Reg> recentInt_;
    std::vector<Reg> recentFp_;

    struct Pending
    {
        Reg reg;
        int gap;
    };
    std::vector<Pending> pending_;

    /** When >= 0, the next body instruction bumps this array pointer. */
    int pendingArrayBump_ = -1;
    /** When >= 0, the next ALU chases this heap pointer via pendReg. */
    int pendingHeapChase_ = -1;
    Reg pendingHeapValue_ = reg::zero;
};

void
Generator::openBlock()
{
    PC_ASSERT(!curOpen_, "openBlock with a block already open");
    cur_ = BasicBlock();
    curOpen_ = true;
}

void
Generator::emit(const Instruction &inst)
{
    PC_ASSERT(curOpen_, "emit with no open block");
    cur_.insts.push_back(inst);
    --budget_;
    for (auto &p : pending_)
        --p.gap;
}

BlockId
Generator::closeBlock(TermKind term, const Instruction &cti)
{
    PC_ASSERT(curOpen_, "closeBlock with no open block");
    cur_.term = term;
    cur_.insts.push_back(cti);
    --budget_;
    BlockId id = prog_.addBlock(std::move(cur_));
    curOpen_ = false;
    return id;
}

BlockId
Generator::closeFallThrough()
{
    PC_ASSERT(curOpen_, "closeFallThrough with no open block");
    cur_.term = TermKind::FallThrough;
    cur_.fallthrough = nextId() + 1;
    BlockId id = prog_.addBlock(std::move(cur_));
    curOpen_ = false;
    return id;
}

Reg
Generator::nextTemp()
{
    Reg r = static_cast<Reg>(genreg::firstTemp + tempIdx_);
    tempIdx_ = (tempIdx_ + 1) % genreg::numTemps;
    recentInt_.push_back(r);
    if (recentInt_.size() > 4)
        recentInt_.erase(recentInt_.begin());
    return r;
}

Reg
Generator::nextFpTemp()
{
    Reg r = static_cast<Reg>(genreg::firstFpTemp + fpTempIdx_);
    fpTempIdx_ = (fpTempIdx_ + 1) % genreg::numFpTemps;
    recentFp_.push_back(r);
    if (recentFp_.size() > 4)
        recentFp_.erase(recentFp_.begin());
    return r;
}

Reg
Generator::nextScratchPtr()
{
    const Reg r = static_cast<Reg>(genreg::firstScratchPtr + scratchIdx_);
    scratchIdx_ = (scratchIdx_ + 1) % genreg::numScratchPtrs;
    return r;
}

Reg
Generator::recentReg(bool fp)
{
    const auto &pool = fp ? recentFp_ : recentInt_;
    if (pool.empty())
        return fp ? genreg::firstFpTemp : genreg::stable0;
    return pool[rng_.nextRange(pool.size())];
}

std::size_t
Generator::drawBodyLen()
{
    const double mean_block =
        1.0 / (prof_.ctiFrac * prof_.ctiStructureBoost);
    double mean_body = std::max(1.0, mean_block - 1.0);
    mean_body *= loopDepth_ > 0 ? prof_.hotBlockScale
                                : prof_.coldBlockScale;
    // Uniform in [0.4, 1.6] x mean: enough spread to vary block
    // shapes without letting one freak hot block dominate a small
    // kernel's dynamic mix.
    const double u = 0.4 + 1.2 * rng_.nextDouble();
    const auto n = static_cast<std::size_t>(mean_body * u + 0.5);
    return std::clamp<std::size_t>(n, 1, 40);
}

void
Generator::emitLoad()
{
    const double weights[] = {prof_.stackFrac, prof_.globalFrac,
                              prof_.arrayFrac, prof_.heapFrac};
    const std::size_t cls = rng_.nextDiscrete(weights);

    const bool fp_dest = rng_.nextBool(prof_.fpFrac);
    const Reg dest = fp_dest ? nextFpTemp() : nextTemp();

    Instruction inst;
    switch (cls) {
      case 0: // stack local
        inst = Instruction::makeLoad(
            dest, reg::sp,
            static_cast<std::int32_t>(4 * rng_.nextRange(64)),
            AddrClass::Stack);
        break;
      case 1: // gp-area global scalar
        inst = Instruction::makeLoad(
            dest, reg::gp,
            static_cast<std::int32_t>(4 * rng_.nextRange(16384)),
            AddrClass::Global);
        break;
      case 2: { // array walk
        const auto s = static_cast<std::uint8_t>(
            rng_.nextRange(prof_.numStreams));
        Reg ptr = static_cast<Reg>(
            genreg::firstArrPtr + s % genreg::numArrPtrs);
        if (rng_.nextBool(prof_.nearAddrProb)) {
            // Indexed access: the effective address is computed right
            // before the load (a[i] with i just produced), so no
            // instruction can be scheduled between them (c = 0).
            const Reg eaddr = nextScratchPtr();
            emit(Instruction::makeAlu(Opcode::ADDU, eaddr, ptr,
                                      recentReg(false)));
            ptr = eaddr;
        } else if (rng_.nextBool(0.8)) {
            // The walk advances its pointer shortly after each access,
            // so the next array load sees a fresh address register.
            pendingArrayBump_ = ptr;
        }
        inst = Instruction::makeLoad(dest, ptr, 0, AddrClass::Array, s);
        break;
      }
      default: { // heap pointer chase
        const auto s = static_cast<std::uint8_t>(
            rng_.nextRange(prof_.numStreams));
        Reg ptr = static_cast<Reg>(
            genreg::firstHeapPtr + s % genreg::numHeapPtrs);
        if (rng_.nextBool(prof_.nearAddrProb)) {
            // Pointer dereference chained off a just-computed field
            // address (p->next->field).
            const Reg eaddr = nextScratchPtr();
            emit(Instruction::makeAlu(Opcode::ADDU, eaddr, ptr,
                                      recentReg(false)));
            ptr = eaddr;
        }
        inst = Instruction::makeLoad(dest, ptr, 0, AddrClass::Heap, s);
        if (!fp_dest && rng_.nextBool(0.5)) {
            pendingHeapChase_ = ptr;
            pendingHeapValue_ = dest;
        }
        break;
      }
    }
    if (fp_dest)
        inst.op = Opcode::LWC1;
    emit(inst);

    if (!rng_.nextBool(prof_.consumerNoneProb)) {
        const int gap = static_cast<int>(
            rng_.nextGeometric(prof_.consumerGeoP));
        pending_.push_back({dest, gap});
        if (pending_.size() > 8)
            pending_.erase(pending_.begin());
    }
}

void
Generator::emitStore()
{
    const double weights[] = {prof_.stackFrac, prof_.globalFrac,
                              prof_.arrayFrac, prof_.heapFrac};
    const std::size_t cls = rng_.nextDiscrete(weights);
    const bool fp_val = rng_.nextBool(prof_.fpFrac);
    const Reg value = recentReg(fp_val);

    Instruction inst;
    switch (cls) {
      case 0:
        inst = Instruction::makeStore(
            value, reg::sp,
            static_cast<std::int32_t>(4 * rng_.nextRange(64)),
            AddrClass::Stack);
        break;
      case 1:
        inst = Instruction::makeStore(
            value, reg::gp,
            static_cast<std::int32_t>(4 * rng_.nextRange(16384)),
            AddrClass::Global);
        break;
      case 2: {
        const auto s = static_cast<std::uint8_t>(
            rng_.nextRange(prof_.numStreams));
        const Reg ptr = static_cast<Reg>(
            genreg::firstArrPtr + s % genreg::numArrPtrs);
        inst = Instruction::makeStore(value, ptr, 0, AddrClass::Array, s);
        break;
      }
      default: {
        const auto s = static_cast<std::uint8_t>(
            rng_.nextRange(prof_.numStreams));
        const Reg ptr = static_cast<Reg>(
            genreg::firstHeapPtr + s % genreg::numHeapPtrs);
        inst = Instruction::makeStore(value, ptr, 0, AddrClass::Heap, s);
        break;
      }
    }
    if (fp_val)
        inst.op = Opcode::SWC1;
    emit(inst);
}

void
Generator::emitAlu()
{
    // Scheduled pointer updates take priority: they are the mechanism
    // that keeps array/heap address registers freshly written.
    if (pendingArrayBump_ >= 0) {
        const Reg ptr = static_cast<Reg>(pendingArrayBump_);
        pendingArrayBump_ = -1;
        emit(Instruction::makeAluImm(Opcode::ADDIU, ptr, ptr, 4));
        return;
    }
    if (pendingHeapChase_ >= 0) {
        const Reg ptr = static_cast<Reg>(pendingHeapChase_);
        const Reg val = pendingHeapValue_;
        pendingHeapChase_ = -1;
        emit(Instruction::makeAlu(Opcode::ADDU, ptr, val, reg::zero));
        return;
    }

    const bool fp = rng_.nextBool(prof_.fpFrac);
    if (fp) {
        static constexpr Opcode fp_ops[] = {Opcode::ADDD, Opcode::MULD,
                                            Opcode::ADDS, Opcode::MULS};
        Reg src1 = recentReg(true);
        // Consume a pending FP load result whose gap has expired.
        for (std::size_t i = 0; i < pending_.size(); ++i) {
            if (pending_[i].gap <= 0 && pending_[i].reg >= reg::f0) {
                src1 = pending_[i].reg;
                pending_.erase(pending_.begin() +
                               static_cast<std::ptrdiff_t>(i));
                break;
            }
        }
        emit(Instruction::makeAlu(fp_ops[rng_.nextRange(4)], nextFpTemp(),
                                  src1, recentReg(true)));
        return;
    }

    static constexpr Opcode int_ops[] = {Opcode::ADDU, Opcode::SUBU,
                                         Opcode::AND, Opcode::OR,
                                         Opcode::XOR, Opcode::SLT};
    Reg src1 = recentReg(false);
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].gap <= 0 && pending_[i].reg < reg::f0) {
            src1 = pending_[i].reg;
            pending_.erase(pending_.begin() +
                           static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    // Rarely refresh one of the stable condition registers.
    const Reg dest = rng_.nextBool(0.02)
                         ? (rng_.nextBool(0.5) ? genreg::stable0
                                               : genreg::stable1)
                         : nextTemp();
    emit(Instruction::makeAlu(int_ops[rng_.nextRange(6)], dest, src1,
                              recentReg(false)));
}

void
Generator::emitBodyInst()
{
    const double p_load =
        prof_.mixBoost * prof_.loadFrac / (1.0 - prof_.ctiFrac);
    const double p_store =
        prof_.mixBoost * prof_.storeFrac / (1.0 - prof_.ctiFrac);
    const double u = rng_.nextDouble();
    if (u < p_load)
        emitLoad();
    else if (u < p_load + p_store)
        emitStore();
    else
        emitAlu();
}

void
Generator::fillBody(std::size_t n)
{
    // Choose the block's instruction kinds first (keeping the mix on
    // target independent of block length), then order them the way
    // compiled code looks: loads cluster at the start of a block,
    // stores toward its end. Dynamically the order changes nothing,
    // but a block-leading load has no instructions to hide behind —
    // the block-boundary collapse of Figure 7.
    const double p_load =
        prof_.mixBoost * prof_.loadFrac / (1.0 - prof_.ctiFrac);
    const double p_store =
        prof_.mixBoost * prof_.storeFrac / (1.0 - prof_.ctiFrac);

    // Deterministic residual-carry counts: hot loop bodies of small
    // kernels execute a handful of blocks millions of times, so the
    // per-block mix must hit the target exactly in the long run
    // rather than only in expectation.
    loadCarry_ += static_cast<double>(n) * p_load;
    storeCarry_ += static_cast<double>(n) * p_store;
    std::size_t k_loads = static_cast<std::size_t>(loadCarry_);
    std::size_t k_stores = static_cast<std::size_t>(storeCarry_);
    if (k_loads + k_stores > n) {
        // Degenerate mixes (p_load + p_store near 1): favor loads.
        k_loads = std::min(k_loads, n);
        k_stores = n - k_loads;
    }
    loadCarry_ -= static_cast<double>(k_loads);
    storeCarry_ -= static_cast<double>(k_stores);

    struct Slot
    {
        std::uint8_t kind; // 0 = load, 1 = store, 2 = alu
        double key;
    };
    std::vector<Slot> slots(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (i < k_loads) {
            slots[i].kind = 0;
            slots[i].key = 0.60 * rng_.nextDouble();
        } else if (i < k_loads + k_stores) {
            slots[i].kind = 1;
            slots[i].key = 0.40 + 0.60 * rng_.nextDouble();
        } else {
            slots[i].kind = 2;
            slots[i].key = 0.15 + 0.85 * rng_.nextDouble();
        }
    }
    std::stable_sort(slots.begin(), slots.end(),
                     [](const Slot &a, const Slot &b) {
                         return a.key < b.key;
                     });
    for (const auto &slot : slots) {
        if (slot.kind == 0)
            emitLoad();
        else if (slot.kind == 1)
            emitStore();
        else
            emitAlu();
    }
}

Instruction
Generator::condBranchCti()
{
    static constexpr Opcode branch_ops[] = {Opcode::BEQ, Opcode::BNE,
                                            Opcode::BLEZ, Opcode::BGTZ};
    const Opcode op = branch_ops[rng_.nextRange(4)];

    Reg src1;
    Reg src2 = reg::zero;
    const double u_feed = rng_.nextDouble();
    if (u_feed < prof_.branchFeedProb) {
        // Condition computed immediately before the branch: the CTI
        // cannot be hoisted over its own compare.
        const Reg cond = nextTemp();
        emit(Instruction::makeAlu(Opcode::SLT, cond, recentReg(false),
                                  recentReg(false)));
        src1 = cond;
    } else if (u_feed < prof_.branchFeedProb + prof_.branchFeedNearProb) {
        // Condition computed one instruction earlier: exactly one
        // delay slot can be filled from before the CTI.
        const Reg cond = nextTemp();
        emit(Instruction::makeAlu(Opcode::SLT, cond, recentReg(false),
                                  recentReg(false)));
        emitBodyInst();
        src1 = cond;
    } else {
        src1 = rng_.nextBool(0.5) ? genreg::stable0 : genreg::stable1;
        if (op == Opcode::BEQ || op == Opcode::BNE)
            src2 = rng_.nextBool(0.5) ? genreg::stable1 : reg::zero;
    }
    if (op == Opcode::BEQ || op == Opcode::BNE)
        return Instruction::makeBranch(op, src1, src2);
    return Instruction::makeBranch(op, src1, reg::zero);
}

void
Generator::genLoop(int depth)
{
    // Flush straight-line code so the loop head starts a block.
    closeFallThrough();
    const BlockId head = nextId();
    openBlock();

    ++loopDepth_;
    // Loop body: a couple of segments, possibly nested.
    const std::size_t segments = 1 + rng_.nextRange(2);
    for (std::size_t s = 0; s < segments && budget_ > 16; ++s)
        genSegment(depth + 1);

    // Latch block: body then a backward conditional branch to the head.
    fillBody(drawBodyLen());
    Instruction cti = condBranchCti();
    cur_.term = TermKind::CondBranch;
    cur_.target = head;
    cur_.fallthrough = nextId() + 1;
    cur_.profile.backward = true;
    // Innermost loops get the benchmark's full trip count; enclosing
    // loops run far fewer iterations (real outer loops sweep phases),
    // which bounds the t^2 amplification of nested loops and lets the
    // instruction stream traverse the whole program.
    const double site_trip = prof_.meanTrip * (0.5 + rng_.nextDouble());
    cur_.profile.meanTrip =
        loopDepth_ > 1 ? std::max(1.0, site_trip)
                       : std::clamp(site_trip / 3.0, 2.0, 12.0);
    cur_.profile.takenProb = 1.0; // direction comes from the trip model
    closeBlock(TermKind::CondBranch, cti);
    --loopDepth_;

    openBlock();
}

void
Generator::genIf(int depth)
{
    const bool has_else = rng_.nextBool(prof_.elseProb);

    fillBody(drawBodyLen());
    Instruction cti = condBranchCti();
    cur_.term = TermKind::CondBranch;
    cur_.fallthrough = nextId() + 1;
    cur_.profile.backward = false;
    // Forward branches skip the then-part when taken; most branches are
    // strongly biased one way or the other.
    const double u = rng_.nextDouble();
    double taken_prob;
    if (u < 0.45)
        taken_prob = 0.02 + 0.28 * rng_.nextDouble();
    else if (u < 0.80)
        taken_prob = 0.70 + 0.28 * rng_.nextDouble();
    else
        taken_prob = 0.30 + 0.40 * rng_.nextDouble();
    cur_.profile.takenProb = taken_prob;
    const BlockId branch_block = closeBlock(TermKind::CondBranch, cti);

    // Then-part (the fall-through path).
    openBlock();
    fillBody(drawBodyLen());
    if (depth < 3 && budget_ > 48 && rng_.nextBool(0.25))
        genSegment(depth + 1);

    if (!has_else) {
        // Taken branch skips straight to the join.
        closeFallThrough();
        prog_.block(branch_block).target = nextId();
        openBlock();
        return;
    }

    // then-part jumps over the else-part to the join.
    cur_.term = TermKind::Jump;
    const BlockId then_exit =
        closeBlock(TermKind::Jump, Instruction::makeJump(Opcode::J));

    // Else-part entry is the branch target.
    prog_.block(branch_block).target = nextId();
    openBlock();
    fillBody(drawBodyLen());
    closeFallThrough();

    // Join.
    prog_.block(then_exit).target = nextId();
    openBlock();
}

void
Generator::genSwitch(int depth)
{
    (void)depth;
    fillBody(drawBodyLen());
    // The jr reads a computed register (the jump-table target).
    const Reg target_reg = nextTemp();
    emit(Instruction::makeAluImm(Opcode::ADDIU, target_reg,
                                 recentReg(false), 0));
    cur_.term = TermKind::Switch;
    const BlockId sw_block = closeBlock(
        TermKind::Switch,
        Instruction::makeJumpRegister(Opcode::JR, target_reg));

    const std::size_t cases = 2 + rng_.nextRange(4);
    std::vector<BlockId> case_exits;
    for (std::size_t c = 0; c < cases; ++c) {
        prog_.block(sw_block).switchTargets.push_back(nextId());
        openBlock();
        fillBody(drawBodyLen());
        if (c + 1 < cases) {
            cur_.term = TermKind::Jump;
            case_exits.push_back(closeBlock(
                TermKind::Jump, Instruction::makeJump(Opcode::J)));
        } else {
            // Last case falls through to the join.
            closeFallThrough();
        }
    }
    for (BlockId e : case_exits)
        prog_.block(e).target = nextId();
    openBlock();
}

void
Generator::genCall()
{
    if (curProc_ + 1 >= prof_.numProcs)
        return;
    // Callee is a later procedure (acyclic call graph, no unbounded
    // recursion): either a nearby peer or one of the utility leaves.
    const std::uint32_t first_util =
        prof_.numProcs >= 6 ? prof_.numProcs - prof_.numProcs / 3
                            : prof_.numProcs - 1;
    std::uint32_t callee;
    if (rng_.nextBool(0.5) && first_util > curProc_ + 1) {
        const std::uint32_t span =
            std::min<std::uint32_t>(5, first_util - curProc_ - 1);
        callee = curProc_ + 1 +
                 static_cast<std::uint32_t>(rng_.nextRange(span));
    } else {
        const std::uint32_t lo = std::max(first_util, curProc_ + 1);
        callee = lo + static_cast<std::uint32_t>(
                          rng_.nextRange(prof_.numProcs - lo));
    }

    fillBody(1 + rng_.nextRange(3));
    cur_.term = TermKind::Call;
    cur_.fallthrough = nextId() + 1;
    const BlockId call_block =
        closeBlock(TermKind::Call, Instruction::makeJump(Opcode::JAL));
    callFixups_.emplace_back(call_block, callee);
    openBlock();
}

void
Generator::genSegment(int depth)
{
    const double u = rng_.nextDouble();
    if (depth < 2 && u < prof_.loopFrac && !utilityProc_) {
        genLoop(depth);
    } else if (u < prof_.loopFrac + prof_.callFrac &&
               curProc_ + 1 < prof_.numProcs && loopDepth_ == 0) {
        // Calls only from loop-free context: a call inside a loop
        // multiplies the whole callee subtree by the trip count and
        // (transitively) concentrates all execution in the first few
        // procedures.
        genCall();
    } else if (u < prof_.loopFrac + prof_.callFrac + 0.40) {
        genIf(depth);
    } else {
        fillBody(drawBodyLen());
    }
}

void
Generator::genBody(int depth)
{
    bool did_switch = false;
    while (budget_ > 24) {
        if (!did_switch && rng_.nextBool(prof_.switchFrac) && depth == 0) {
            genSwitch(depth);
            did_switch = true;
            continue;
        }
        genSegment(depth);
    }
}

void
Generator::genProc(std::uint32_t proc)
{
    curProc_ = proc;
    procIsLeaf_ = proc + 1 >= prof_.numProcs;
    // The last third of the procedures are small leaf-like utilities
    // (string/compare/copy helpers): they absorb most call-tree
    // visits, so keeping them small and loop-free stops the call DAG
    // from concentrating all executed instructions at high indices —
    // the big early procedures then get swept once per driver
    // iteration, which is what gives the instruction stream a working
    // set comparable to the static code size.
    utilityProc_ = proc != 0 && prof_.numProcs >= 6 &&
                   proc >= prof_.numProcs - prof_.numProcs / 3;
    loopDepth_ = 0;
    pending_.clear();
    pendingArrayBump_ = -1;
    pendingHeapChase_ = -1;

    // Per-procedure budget with some jitter; the main procedure (0) is
    // small — it is just the driver loop.
    const std::int64_t base =
        static_cast<std::int64_t>(prof_.staticInsts) /
        static_cast<std::int64_t>(prof_.numProcs);
    if (proc == 0) {
        budget_ = std::max<std::int64_t>(24, base / 4);
    } else if (utilityProc_) {
        budget_ = 24 + static_cast<std::int64_t>(rng_.nextRange(64));
    } else {
        // Non-utility procedures share the remaining static budget.
        const std::int64_t scaled = base * 3 / 2;
        budget_ = std::max<std::int64_t>(
            32, scaled + rng_.nextInt(-scaled / 4, scaled / 4));
    }

    procEntry_.push_back(nextId());
    prog_.addProcEntry(nextId());
    openBlock();

    // Prologue: adjust sp; non-leaf procedures save ra on the stack.
    const std::int32_t frame =
        static_cast<std::int32_t>(32 + 8 * rng_.nextRange(24));
    emit(Instruction::makeAluImm(Opcode::ADDIU, reg::sp, reg::sp, -frame));
    if (!procIsLeaf_)
        emit(Instruction::makeStore(reg::ra, reg::sp, 0,
                                    AddrClass::Stack));
    // Initialize array/heap stream pointers used by this procedure.
    // The driver (startup code) initializes every pointer and the
    // stable condition registers unconditionally, so no register is
    // ever read before some reachable definition; other procedures
    // refresh a subset (re-anchoring their working arrays).
    for (std::uint32_t s = 0; s < prof_.numStreams; ++s) {
        if (proc == 0 || rng_.nextBool(0.35)) {
            emit(Instruction::makeAluImm(
                Opcode::ADDIU,
                static_cast<Reg>(genreg::firstArrPtr +
                                 s % genreg::numArrPtrs),
                reg::gp, static_cast<std::int32_t>(1024 * (s + 1))));
        }
        if (proc == 0 || rng_.nextBool(0.15)) {
            emit(Instruction::makeLoad(
                static_cast<Reg>(genreg::firstHeapPtr +
                                 s % genreg::numHeapPtrs),
                reg::gp, static_cast<std::int32_t>(4 * s),
                AddrClass::Global));
        }
    }
    if (proc == 0) {
        emit(Instruction::makeAluImm(Opcode::ADDIU, genreg::stable0,
                                     reg::zero, 1));
        emit(Instruction::makeAluImm(Opcode::ADDIU, genreg::stable1,
                                     reg::zero, 2));
        // Seed the temporary pool so early consumers have defs.
        for (Reg t = genreg::firstTemp;
             t < genreg::firstTemp + genreg::numTemps; ++t) {
            emit(Instruction::makeAluImm(Opcode::ADDIU, t, reg::zero,
                                         t));
        }
        for (Reg f = genreg::firstFpTemp;
             f < genreg::firstFpTemp + genreg::numFpTemps; ++f) {
            emit(Instruction::makeLoad(f, reg::gp,
                                       4 * (f - genreg::firstFpTemp),
                                       AddrClass::Global));
        }
        for (Reg a = genreg::firstScratchPtr;
             a < genreg::firstScratchPtr + genreg::numScratchPtrs;
             ++a) {
            emit(Instruction::makeAluImm(Opcode::ADDIU, a, reg::gp,
                                         4 * a));
        }
    }

    if (proc == 0) {
        // Driver: an effectively-infinite loop that calls every other
        // procedure in turn, so the executed instruction footprint is
        // the whole program (real applications sweep their code
        // between loop phases); the trace executor stops at its
        // instruction budget, never at program exit.
        closeFallThrough();
        const BlockId head = nextId();
        openBlock();
        ++loopDepth_;
        for (std::uint32_t callee = 1; callee < prof_.numProcs;
             ++callee) {
            fillBody(1 + rng_.nextRange(3));
            cur_.term = TermKind::Call;
            cur_.fallthrough = nextId() + 1;
            const BlockId call_block = closeBlock(
                TermKind::Call, Instruction::makeJump(Opcode::JAL));
            callFixups_.emplace_back(call_block, callee);
            openBlock();
        }
        fillBody(2 + rng_.nextRange(4));
        Instruction cti = condBranchCti();
        cur_.term = TermKind::CondBranch;
        cur_.target = head;
        cur_.fallthrough = nextId() + 1;
        cur_.profile.backward = true;
        cur_.profile.meanTrip = 1e15; // never exits in practice
        cur_.profile.takenProb = 1.0;
        closeBlock(TermKind::CondBranch, cti);
        --loopDepth_;
        openBlock();
    } else {
        genBody(0);
    }

    // Epilogue: restore ra (non-leaf), pop the frame, return.
    if (!procIsLeaf_)
        emit(Instruction::makeLoad(reg::ra, reg::sp, 0, AddrClass::Stack));
    emit(Instruction::makeAluImm(Opcode::ADDIU, reg::sp, reg::sp, frame));
    cur_.term = TermKind::Return;
    closeBlock(TermKind::Return,
               Instruction::makeJumpRegister(Opcode::JR, reg::ra));
}

Program
Generator::run()
{
    for (std::uint32_t p = 0; p < prof_.numProcs; ++p)
        genProc(p);

    for (auto [block, callee] : callFixups_)
        prog_.block(block).target = procEntry_[callee];

    prog_.setEntry(procEntry_[0]);
    prog_.layout();
    prog_.validate();
    return std::move(prog_);
}

} // namespace

Program
generateProgram(const GenProfile &profile)
{
    Generator gen(profile);
    return gen.run();
}

} // namespace pipecache::isa
