#include "isa/dependence.hh"

#include "util/logging.hh"

namespace pipecache::isa {

namespace {

bool
isBarrier(const Instruction &inst)
{
    return isCti(inst.op) || inst.op == Opcode::SYSCALL;
}

} // namespace

bool
registerIndependent(const Instruction &a, const Instruction &b)
{
    const Reg a_dest = a.destReg();
    const Reg b_dest = b.destReg();

    // RAW / WAR in both directions.
    if (a_dest != reg::zero && b.reads(a_dest))
        return false;
    if (b_dest != reg::zero && a.reads(b_dest))
        return false;
    // WAW.
    if (a_dest != reg::zero && a_dest == b_dest)
        return false;
    return true;
}

std::size_t
ctiHoistDistance(const BasicBlock &bb)
{
    if (!bb.hasCti() || bb.size() < 2)
        return 0;

    const Instruction &cti = bb.insts.back();
    std::size_t dist = 0;
    // Walk upward from the instruction just before the CTI.
    for (std::size_t i = bb.size() - 1; i-- > 0;) {
        const Instruction &prev = bb.insts[i];
        if (isBarrier(prev) || !registerIndependent(cti, prev))
            break;
        ++dist;
    }
    return dist;
}

std::size_t
loadHoistDistance(const BasicBlock &bb, std::size_t load_pos)
{
    PC_ASSERT(load_pos < bb.size(), "load position out of range");
    const Instruction &load = bb.insts[load_pos];
    PC_ASSERT(isLoad(load.op), "loadHoistDistance on non-load");

    const Reg addr_reg = load.addrReg();
    const Reg dest = load.destReg();

    std::size_t dist = 0;
    for (std::size_t i = load_pos; i-- > 0;) {
        const Instruction &prev = bb.insts[i];
        if (isBarrier(prev))
            break;
        // Address register dependence (RAW into the load).
        if (addr_reg != reg::zero && prev.writes(addr_reg))
            break;
        // WAR/WAW on the load's destination.
        if (dest != reg::zero && (prev.reads(dest) || prev.writes(dest)))
            break;
        // Stores may be crossed under perfect disambiguation; loads and
        // ALU ops impose no memory constraint either.
        ++dist;
    }
    return dist;
}

std::size_t
loadUseDistanceInBlock(const BasicBlock &bb, std::size_t load_pos)
{
    PC_ASSERT(load_pos < bb.size(), "load position out of range");
    const Instruction &load = bb.insts[load_pos];
    PC_ASSERT(isLoad(load.op), "loadUseDistanceInBlock on non-load");

    const Reg dest = load.destReg();
    if (dest == reg::zero)
        return bb.size() - 1 - load_pos;

    for (std::size_t i = load_pos + 1; i < bb.size(); ++i) {
        if (bb.insts[i].reads(dest))
            return i - load_pos - 1;
        // A redefinition kills the value: no in-block consumer.
        if (bb.insts[i].writes(dest))
            return bb.size() - 1 - load_pos;
    }
    return bb.size() - 1 - load_pos;
}

} // namespace pipecache::isa
