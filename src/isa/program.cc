#include "isa/program.hh"

#include <sstream>

#include "util/logging.hh"

namespace pipecache::isa {

BlockId
Program::addBlock(BasicBlock block)
{
    blocks_.push_back(std::move(block));
    blockAddr_.clear();
    return static_cast<BlockId>(blocks_.size() - 1);
}

BasicBlock &
Program::block(BlockId id)
{
    PC_ASSERT(id < blocks_.size(), "block id out of range: ", id);
    blockAddr_.clear();
    return blocks_[id];
}

const BasicBlock &
Program::block(BlockId id) const
{
    PC_ASSERT(id < blocks_.size(), "block id out of range: ", id);
    return blocks_[id];
}

void
Program::layout()
{
    blockAddr_.resize(blocks_.size());
    Addr addr = base_;
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        blockAddr_[b] = addr;
        addr += static_cast<Addr>(blocks_[b].size() * bytesPerWord);
    }
}

Addr
Program::blockAddr(BlockId id) const
{
    PC_ASSERT(!blockAddr_.empty(), "layout() has not been run");
    PC_ASSERT(id < blockAddr_.size(), "block id out of range: ", id);
    return blockAddr_[id];
}

Addr
Program::instAddr(BlockId id, std::size_t pos) const
{
    PC_ASSERT(pos < blocks_[id].size(),
              "instruction position out of range: block ", id, " pos ", pos);
    return blockAddr(id) + static_cast<Addr>(pos * bytesPerWord);
}

std::size_t
Program::staticInstCount() const
{
    std::size_t n = 0;
    for (const auto &b : blocks_)
        n += b.size();
    return n;
}

std::size_t
Program::staticCtiCount() const
{
    std::size_t n = 0;
    for (const auto &b : blocks_)
        if (b.hasCti())
            ++n;
    return n;
}

void
Program::validate() const
{
    PC_ASSERT(!blocks_.empty(), "empty program");
    PC_ASSERT(entry_ < blocks_.size(), "program entry out of range");
    for (std::size_t b = 0; b < blocks_.size(); ++b)
        blocks_[b].checkInvariants(static_cast<BlockId>(b), blocks_.size());
    for (BlockId p : procEntries_)
        PC_ASSERT(p < blocks_.size(), "procedure entry out of range: ", p);
}

std::string
Program::disassemble() const
{
    std::ostringstream os;
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        os << "B" << b;
        if (!blockAddr_.empty())
            os << " @0x" << std::hex << blockAddr_[b] << std::dec;
        switch (blocks_[b].term) {
          case TermKind::FallThrough:
            os << " -> B" << blocks_[b].fallthrough;
            break;
          case TermKind::CondBranch:
            os << " ?> B" << blocks_[b].target << " / B"
               << blocks_[b].fallthrough;
            break;
          case TermKind::Jump:
            os << " => B" << blocks_[b].target;
            break;
          case TermKind::Call:
            os << " call B" << blocks_[b].target << " ret B"
               << blocks_[b].fallthrough;
            break;
          case TermKind::Return:
            os << " ret";
            break;
          case TermKind::Switch:
            os << " switch(" << blocks_[b].switchTargets.size() << ")";
            break;
        }
        os << ":\n";
        for (const auto &inst : blocks_[b].insts)
            os << "    " << inst.toString() << "\n";
    }
    return os.str();
}

} // namespace pipecache::isa
