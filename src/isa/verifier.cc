#include "isa/verifier.hh"

#include <algorithm>
#include <array>
#include <deque>
#include <sstream>

#include "util/logging.hh"

namespace pipecache::isa {

namespace {

bool
isPrecious(Reg r)
{
    // Registers the runtime initializes before user code runs.
    return r == reg::zero || r == reg::gp || r == reg::sp ||
           r == reg::fp || r == reg::ra;
}

std::vector<bool>
reachableBlocks(const Program &program)
{
    std::vector<bool> seen(program.numBlocks(), false);
    std::deque<BlockId> work{program.entry()};
    seen[program.entry()] = true;

    auto push = [&](BlockId id) {
        if (id != invalidBlock && id < program.numBlocks() &&
            !seen[id]) {
            seen[id] = true;
            work.push_back(id);
        }
    };

    while (!work.empty()) {
        const BlockId id = work.front();
        work.pop_front();
        const BasicBlock &bb = program.block(id);
        switch (bb.term) {
          case TermKind::FallThrough:
            push(bb.fallthrough);
            break;
          case TermKind::CondBranch:
            push(bb.target);
            push(bb.fallthrough);
            break;
          case TermKind::Jump:
            push(bb.target);
            break;
          case TermKind::Call:
            push(bb.target);
            push(bb.fallthrough); // return continuation
            break;
          case TermKind::Return:
            break;
          case TermKind::Switch:
            for (BlockId t : bb.switchTargets)
                push(t);
            break;
        }
    }
    return seen;
}

} // namespace

std::size_t
VerifierReport::count(VerifierIssue::Kind kind) const
{
    return static_cast<std::size_t>(
        std::count_if(issues.begin(), issues.end(),
                      [kind](const VerifierIssue &issue) {
                          return issue.kind == kind;
                      }));
}

VerifierReport
verifyProgram(const Program &program)
{
    program.validate();
    VerifierReport report;

    const std::vector<bool> reachable = reachableBlocks(program);
    report.reachableBlocks = static_cast<std::size_t>(
        std::count(reachable.begin(), reachable.end(), true));

    for (BlockId b = 0; b < program.numBlocks(); ++b) {
        if (!reachable[b]) {
            std::ostringstream os;
            os << "block B" << b << " is unreachable from entry";
            report.issues.push_back({
                VerifierIssue::Kind::UnreachableBlock, b, reg::zero,
                os.str()});
        }
    }

    // Path-insensitive def set over reachable code.
    std::array<bool, reg::numRegs> defined{};
    for (BlockId b = 0; b < program.numBlocks(); ++b) {
        if (!reachable[b])
            continue;
        for (const auto &inst : program.block(b).insts) {
            const Reg dest = inst.destReg();
            if (dest != reg::zero)
                defined[dest] = true;
        }
    }
    std::array<bool, reg::numRegs> reported{};
    for (BlockId b = 0; b < program.numBlocks(); ++b) {
        if (!reachable[b])
            continue;
        for (const auto &inst : program.block(b).insts) {
            for (const Reg src : inst.srcRegs()) {
                if (src == reg::zero || isPrecious(src) ||
                    defined[src] || reported[src]) {
                    continue;
                }
                reported[src] = true;
                std::ostringstream os;
                os << "r" << int{src} << " read in B" << b
                   << " but never defined anywhere reachable";
                report.issues.push_back(
                    {VerifierIssue::Kind::ReadBeforeAnyDef, b, src,
                     os.str()});
            }
        }
    }

    // Call discipline.
    const auto &entries = program.procEntries();
    auto is_entry = [&entries](BlockId id) {
        return std::find(entries.begin(), entries.end(), id) !=
               entries.end();
    };
    if (!entries.empty()) {
        for (BlockId b = 0; b < program.numBlocks(); ++b) {
            if (!reachable[b])
                continue;
            const BasicBlock &bb = program.block(b);
            if (bb.term == TermKind::Call && !is_entry(bb.target)) {
                std::ostringstream os;
                os << "B" << b << " calls B" << bb.target
                   << ", which is not a procedure entry";
                report.issues.push_back(
                    {VerifierIssue::Kind::CallToNonEntry, b,
                     reg::zero, os.str()});
            }
        }

        // Every procedure region must contain a return.
        for (std::size_t p = 0; p < entries.size(); ++p) {
            const BlockId begin = entries[p];
            const BlockId end =
                p + 1 < entries.size()
                    ? entries[p + 1]
                    : static_cast<BlockId>(program.numBlocks());
            bool has_return = false;
            for (BlockId b = begin; b < end && !has_return; ++b)
                has_return =
                    program.block(b).term == TermKind::Return;
            if (!has_return) {
                std::ostringstream os;
                os << "procedure at B" << begin
                   << " has no return block";
                report.issues.push_back(
                    {VerifierIssue::Kind::ProcedureWithoutReturn,
                     begin, reg::zero, os.str()});
            }
        }
    }
    return report;
}

} // namespace pipecache::isa
