/**
 * @file
 * Opcodes for the MIPS R2000 subset modelled by the simulator.
 *
 * The paper's workloads are MIPS R2000 binaries; the post-processor
 * (sched/) and the trace executor (trace/) only need the architectural
 * *shape* of each instruction — which registers it reads and writes,
 * whether it is a load, store, or control transfer — so the subset
 * keeps exactly that information.
 */

#ifndef PIPECACHE_ISA_OPCODE_HH
#define PIPECACHE_ISA_OPCODE_HH

#include <cstdint>
#include <string_view>

namespace pipecache::isa {

/** MIPS R2000 subset opcodes. */
enum class Opcode : std::uint8_t
{
    // ALU register-register.
    ADDU,
    SUBU,
    AND,
    OR,
    XOR,
    SLT,
    // ALU register-immediate.
    ADDIU,
    ANDI,
    ORI,
    SLTI,
    LUI,
    SLL,
    SRL,
    SRA,
    // Multiply/divide unit.
    MULT,
    DIV,
    MFLO,
    MFHI,
    // Floating point (modelled as generic register ops on the FP bank).
    ADDS,
    MULS,
    ADDD,
    MULD,
    // Loads.
    LW,
    LH,
    LB,
    LWC1,
    // Stores.
    SW,
    SH,
    SB,
    SWC1,
    // Control transfer instructions.
    BEQ,
    BNE,
    BLEZ,
    BGTZ,
    J,
    JAL,
    JR,
    JALR,
    // Miscellaneous.
    NOP,
    SYSCALL,

    NumOpcodes
};

/** Coarse class of an opcode, used for mix statistics. */
enum class OpClass : std::uint8_t
{
    Alu,
    Load,
    Store,
    CondBranch,
    Jump,          //!< direct unconditional (j, jal)
    IndirectJump,  //!< register-indirect (jr, jalr)
    Other          //!< nop, syscall
};

/** Map an opcode to its coarse class. */
OpClass opClass(Opcode op);

/** True for lw/lh/lb/lwc1. */
bool isLoad(Opcode op);

/** True for sw/sh/sb/swc1. */
bool isStore(Opcode op);

/** True for any load or store. */
bool isMem(Opcode op);

/** True for any control transfer instruction. */
bool isCti(Opcode op);

/** True for conditional branches (beq/bne/blez/bgtz). */
bool isCondBranch(Opcode op);

/** True for direct unconditional jumps (j/jal). */
bool isDirectJump(Opcode op);

/** True for register-indirect jumps (jr/jalr). */
bool isIndirectJump(Opcode op);

/** True for jal/jalr (write the return-address register). */
bool isCall(Opcode op);

/** Assembler mnemonic for an opcode. */
std::string_view opcodeName(Opcode op);

} // namespace pipecache::isa

#endif // PIPECACHE_ISA_OPCODE_HH
