/**
 * @file
 * Register dependence analysis used by the delay-slot post-processor.
 *
 * Two questions from Section 3 of the paper are answered here:
 *
 *  - How far can a block's terminating CTI be hoisted over the
 *    instructions before it (determining r, the number of branch delay
 *    slots fillable from before the branch)?
 *  - How far can a load be moved up within its block (bounding the
 *    statically hideable load delay, the c component of e)?
 *
 * Following the paper, memory disambiguation is assumed perfect: a
 * load may move past a store (they are assumed not to alias), but
 * stores keep their order with respect to each other.
 */

#ifndef PIPECACHE_ISA_DEPENDENCE_HH
#define PIPECACHE_ISA_DEPENDENCE_HH

#include <cstddef>

#include "isa/basic_block.hh"

namespace pipecache::isa {

/**
 * True if instructions @p a and @p b have no register dependence
 * (no RAW, WAR, or WAW hazard) and may be reordered freely.
 */
bool registerIndependent(const Instruction &a, const Instruction &b);

/**
 * Number of instructions the terminating CTI of @p bb can be hoisted
 * over (the r of the paper's delay-slot procedure, before capping at
 * b). Zero for blocks without a CTI or with an empty body.
 *
 * The CTI may move above a preceding instruction I iff the pair is
 * register-independent and I is not itself a CTI or syscall.
 */
std::size_t ctiHoistDistance(const BasicBlock &bb);

/**
 * Number of instructions the load at @p load_pos can be hoisted over
 * within its block (the basic-block-bounded component of c from
 * Section 3.2). Requires the instruction at load_pos to be a load.
 *
 * The load may move above a preceding instruction I iff I does not
 * write the load's address register, does not read or write the
 * load's destination, and is not a CTI or syscall. Stores may be
 * crossed (perfect disambiguation).
 */
std::size_t loadHoistDistance(const BasicBlock &bb, std::size_t load_pos);

/**
 * Distance (in instructions) from the load at @p load_pos to the first
 * subsequent in-block instruction that reads the load's destination
 * register, or the distance to the end of the block if no in-block
 * consumer exists (the basic-block-bounded component of d).
 */
std::size_t loadUseDistanceInBlock(const BasicBlock &bb,
                                   std::size_t load_pos);

} // namespace pipecache::isa

#endif // PIPECACHE_ISA_DEPENDENCE_HH
