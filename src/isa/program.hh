/**
 * @file
 * A whole program: basic blocks, procedure entries, and the address
 * layout used to produce instruction-fetch addresses.
 */

#ifndef PIPECACHE_ISA_PROGRAM_HH
#define PIPECACHE_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/basic_block.hh"
#include "util/units.hh"

namespace pipecache::isa {

/**
 * A program in canonical (zero-delay-slot) form.
 *
 * Blocks are laid out contiguously in block-id order starting at
 * base(); the generator emits blocks so that a block's fall-through
 * successor is the next block id, giving a realistic linear code
 * layout for the instruction cache.
 */
class Program
{
  public:
    Program() = default;

    /** Append a block; returns its id. */
    BlockId addBlock(BasicBlock block);

    BasicBlock &block(BlockId id);
    const BasicBlock &block(BlockId id) const;

    std::size_t numBlocks() const { return blocks_.size(); }

    /** Program entry block (default 0). */
    BlockId entry() const { return entry_; }
    void setEntry(BlockId id) { entry_ = id; }

    /** Base byte address of the code segment. */
    Addr base() const { return base_; }
    void setBase(Addr base) { base_ = base; }

    /** Record a procedure entry (for statistics and generation). */
    void addProcEntry(BlockId id) { procEntries_.push_back(id); }
    const std::vector<BlockId> &procEntries() const { return procEntries_; }

    /**
     * Compute the address layout: block b starts at
     * base + 4 * (instructions in blocks 0..b-1). Must be re-run after
     * any structural change.
     */
    void layout();

    /** True once layout() has been run against the current shape. */
    bool laidOut() const { return !blockAddr_.empty(); }

    /** Start byte address of a block (requires layout()). */
    Addr blockAddr(BlockId id) const;

    /** Byte address of instruction @p pos within block @p id. */
    Addr instAddr(BlockId id, std::size_t pos) const;

    /** Total static instruction count. */
    std::size_t staticInstCount() const;

    /** Count of static CTIs. */
    std::size_t staticCtiCount() const;

    /**
     * Run all per-block invariant checks plus whole-program checks
     * (entry valid, every fall-through chain stays in range). Panics on
     * violation; used by tests and after generation.
     */
    void validate() const;

    /** Multi-line disassembly listing (debugging / golden tests). */
    std::string disassemble() const;

  private:
    std::vector<BasicBlock> blocks_;
    std::vector<Addr> blockAddr_;
    std::vector<BlockId> procEntries_;
    BlockId entry_ = 0;
    Addr base_ = 0x00400000;
};

} // namespace pipecache::isa

#endif // PIPECACHE_ISA_PROGRAM_HH
