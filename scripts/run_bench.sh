#!/usr/bin/env bash
# Run the throughput microbenchmarks and write BENCH_throughput.json
# at the repo root (google-benchmark JSON, consumed by CI's perf-smoke
# job and by README/DESIGN speedup numbers).
#
#   scripts/run_bench.sh [build-dir] [extra benchmark args...]
#
# The baseline must mean something: if the binary is missing, a
# Release build is configured and built at [build-dir] (default
# build-bench/); if the binary self-reports as unoptimized (the
# pipecache_optimized context key stamped by bench_throughput's main),
# the run is discarded rather than published.
#
# Examples:
#   scripts/run_bench.sh                       # Release build, full run
#   scripts/run_bench.sh build-bench --benchmark_min_time=0.05   # smoke
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-bench}"
shift || true

bench_bin="$build_dir/bench/bench_throughput"
if [[ ! -x "$bench_bin" ]]; then
    # Layouts differ between generators; fall back to a search.
    bench_bin="$(find "$build_dir" -name bench_throughput -type f 2>/dev/null | head -n1 || true)"
fi
if [[ -z "$bench_bin" || ! -x "$bench_bin" ]]; then
    echo "run_bench.sh: bench_throughput not found under $build_dir; configuring a Release build" >&2
    cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
    cmake --build "$build_dir" -j --target bench_throughput
    bench_bin="$build_dir/bench/bench_throughput"
fi

out="$repo_root/BENCH_throughput.json"
tmp="$(mktemp "${TMPDIR:-/tmp}/BENCH_throughput.XXXXXX.json")"
trap 'rm -f "$tmp"' EXIT

"$bench_bin" \
    --benchmark_out="$tmp" \
    --benchmark_out_format=json \
    "$@"

# Refuse to publish numbers measured from an unoptimized binary. The
# gate is our own context key: the library's "library_build_type"
# describes the installed libbenchmark, not this code.
python3 - "$tmp" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    ctx = json.load(f)["context"]
opt = ctx.get("pipecache_optimized")
build = ctx.get("pipecache_build_type", "unknown")
if opt != "1":
    sys.stderr.write(
        "run_bench.sh: refusing to write BENCH_throughput.json from an "
        f"unoptimized binary (pipecache_build_type={build!r}, "
        f"pipecache_optimized={opt!r}).\n"
        "Rebuild with -DCMAKE_BUILD_TYPE=Release and rerun.\n")
    sys.exit(1)
EOF

mv "$tmp" "$out"
trap - EXIT
echo "wrote $out" >&2
