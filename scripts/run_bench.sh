#!/usr/bin/env bash
# Run the throughput microbenchmarks and write BENCH_throughput.json
# at the repo root (google-benchmark JSON, consumed by CI's perf-smoke
# job and by README/DESIGN speedup numbers).
#
#   scripts/run_bench.sh [build-dir] [extra benchmark args...]
#
# Examples:
#   scripts/run_bench.sh                       # default build/, full run
#   scripts/run_bench.sh build --benchmark_min_time=0.05s   # CI smoke
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

bench_bin="$build_dir/bench/bench_throughput"
if [[ ! -x "$bench_bin" ]]; then
    # Layouts differ between generators; fall back to a search.
    bench_bin="$(find "$build_dir" -name bench_throughput -type f | head -n1)"
fi
if [[ -z "$bench_bin" || ! -x "$bench_bin" ]]; then
    echo "run_bench.sh: bench_throughput not found under $build_dir" >&2
    echo "build it first: cmake -B build -S . && cmake --build build -j" >&2
    exit 1
fi

out="$repo_root/BENCH_throughput.json"
"$bench_bin" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    "$@"
echo "wrote $out" >&2
