#!/bin/sh
# CLI validation for pipecache_sweep --scale.
#
# strtod happily parses "nan" and "inf", and NaN defeats a plain
# `< 1.0` range check (every comparison with NaN is false), so the
# tool must explicitly require a finite value >= 1. Rejections are
# usage errors (exit 2); accepted values are probed with a trailing
# --help so no sweep actually runs.
#
# Usage: scale_args_test.sh /path/to/pipecache_sweep
set -u

bin="$1"
fail=0

reject() {
    "$bin" --scale "$1" >/dev/null 2>&1
    code=$?
    if [ "$code" -ne 2 ]; then
        echo "FAIL: --scale '$1' exited $code, want 2 (usage error)" >&2
        fail=1
    fi
}

accept() {
    # parseArgs handles flags in order, so --help exits 0 only after
    # --scale has been validated.
    "$bin" --scale "$1" --help >/dev/null 2>&1
    code=$?
    if [ "$code" -ne 0 ]; then
        echo "FAIL: --scale '$1' rejected (exit $code), want accept" >&2
        fail=1
    fi
}

for v in nan NaN NAN 'nan(x)' inf INF -inf infinity Infinity 1e999 \
         -1e999 0.5 0 -3 abc '' '2000x'; do
    reject "$v"
done

for v in 1 1.5 2000 40000 1e6; do
    accept "$v"
done

if [ "$fail" -eq 0 ]; then
    echo "ok: --scale validation"
fi
exit "$fail"
