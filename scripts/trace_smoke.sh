#!/usr/bin/env bash
# External-trace ingestion smoke test:
#
#   1. --list-workloads prints at least 10 registry scenarios.
#   2. The checked-in din and oracleGeneral fixtures sweep to
#      byte-identical JSON with --threads 1 and --threads 4 (the
#      stream path's determinism contract).
#   3. A named workload sweeps to byte-identical JSON across the same
#      thread counts.
#   4. Malformed din input fails with exit code 3 (DataError) and an
#      error message carrying the file:line attribution.
#
# Usage: trace_smoke.sh <pipecache_sweep> <fixture_dir> [workdir]
set -euo pipefail

SWEEP=${1:?usage: trace_smoke.sh <pipecache_sweep> <fixture_dir> [workdir]}
FIXTURES=${2:?usage: trace_smoke.sh <pipecache_sweep> <fixture_dir> [workdir]}
WORK=${3:-$(mktemp -d)}
trap 'rm -rf "$WORK"' EXIT

GRID=(--b 0 --isize 1,4 --dsize 1,8)

echo "== workload registry =="
"$SWEEP" --list-workloads > "$WORK/workloads.txt"
count=$(wc -l < "$WORK/workloads.txt")
if [ "$count" -lt 10 ]; then
    echo "FAIL: --list-workloads printed $count scenarios (< 10)"
    exit 1
fi
echo "ok: $count workloads registered"

echo "== trace fixtures are thread-count invariant =="
for fixture in fixture.din fixture.oracleGeneral; do
    "$SWEEP" --trace "$FIXTURES/$fixture" "${GRID[@]}" \
        --threads 1 --quiet --out "$WORK/t1.json"
    "$SWEEP" --trace "$FIXTURES/$fixture" "${GRID[@]}" \
        --threads 4 --quiet --out "$WORK/t4.json"
    cmp "$WORK/t1.json" "$WORK/t4.json" || {
        echo "FAIL: $fixture JSON differs across thread counts"
        exit 1
    }
    grep -q '"mode":"stream"' "$WORK/t1.json" || {
        echo "FAIL: $fixture output is not stream-mode JSON"
        exit 1
    }
    echo "ok: $fixture byte-stable"
done

echo "== workload sweep is thread-count invariant =="
"$SWEEP" --workload zipf-hot "${GRID[@]}" \
    --threads 1 --quiet --out "$WORK/w1.json"
"$SWEEP" --workload zipf-hot "${GRID[@]}" \
    --threads 4 --quiet --out "$WORK/w4.json"
cmp "$WORK/w1.json" "$WORK/w4.json" || {
    echo "FAIL: workload JSON differs across thread counts"
    exit 1
}
echo "ok: zipf-hot byte-stable"

echo "== malformed din is a DataError (exit 3) with line attribution =="
printf '2 400\n9 broken\n' > "$WORK/bad.din"
set +e
err=$("$SWEEP" --trace "$WORK/bad.din" "${GRID[@]}" --quiet \
      --out "$WORK/bad.json" 2>&1)
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
    echo "FAIL: malformed din exited $rc (want 3); output: $err"
    exit 1
fi
case "$err" in
*bad.din:2:*) ;;
*)
    echo "FAIL: error message lacks file:line attribution: $err"
    exit 1
    ;;
esac
echo "ok: malformed din rejected with '$err'"

echo "trace smoke: all checks passed"
