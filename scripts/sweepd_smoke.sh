#!/usr/bin/env bash
# End-to-end smoke test for the sweep daemon:
#
#   1. Start pipecache_sweepd on a Unix socket and wait for readiness.
#   2. Cold and warm daemon sweeps must be byte-identical to the
#      pipecache_sweep CLI on the same grid (the determinism contract).
#   3. With --max-inflight 1 --max-queue 0, a request issued while a
#      slow sweep holds the slot must be rejected (ctl exit 6) and the
#      daemon must stay healthy.
#   4. A client SIGKILLed mid-stream must not take the daemon down.
#   5. SIGTERM while a request is in flight must drain: the in-flight
#      client still gets its (byte-identical) result and the daemon
#      exits 0.
#
# Usage: sweepd_smoke.sh <pipecache_sweepd> <pipecache_sweepctl> \
#                        <pipecache_sweep> [workdir]
set -euo pipefail

DAEMON=${1:?usage: sweepd_smoke.sh <sweepd> <sweepctl> <sweep> [workdir]}
CTL=${2:?usage: sweepd_smoke.sh <sweepd> <sweepctl> <sweep> [workdir]}
SWEEP=${3:?usage: sweepd_smoke.sh <sweepd> <sweepctl> <sweep> [workdir]}
WORK=${4:-$(mktemp -d)}
mkdir -p "$WORK"

SOCK="$WORK/sweepd.sock"
DAEMON_PID=

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
}
trap cleanup EXIT

# A fast grid for the byte-identity checks and a slow one to hold the
# admission slot while we provoke rejections and interruptions.
FAST_CLI=(--b 0:3 --isize 1,2,4,8 --scale 2000 --threads 2 --quiet)
FAST_CTL="b=0:3 isize=1,2,4,8 scale=2000 threads=2"
SLOW_CTL="b=0:3 isize=1,2,4,8,16,32 scale=300 threads=2"

echo "== start daemon"
"$DAEMON" --socket "$SOCK" --threads 2 --max-inflight 1 \
    --max-queue 0 >"$WORK/daemon.out" 2>"$WORK/daemon.err" &
DAEMON_PID=$!

for _ in $(seq 1 200); do
    if "$CTL" --socket "$SOCK" ping >/dev/null 2>&1; then
        break
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "FAIL: daemon died during startup"
        cat "$WORK/daemon.err"
        exit 1
    }
    sleep 0.05
done
"$CTL" --socket "$SOCK" ping >/dev/null

echo "== cold daemon sweep vs CLI"
"$SWEEP" "${FAST_CLI[@]}" --out "$WORK/reference.json"
# shellcheck disable=SC2086
"$CTL" --socket "$SOCK" --quiet sweep $FAST_CTL --out "$WORK/cold.json"
cmp "$WORK/reference.json" "$WORK/cold.json" || {
    echo "FAIL: cold daemon output differs from the CLI"
    exit 1
}

echo "== warm daemon sweep (cross-request memo)"
# shellcheck disable=SC2086
"$CTL" --socket "$SOCK" sweep $FAST_CTL --out "$WORK/warm.json" \
    2>"$WORK/warm.err"
cmp "$WORK/reference.json" "$WORK/warm.json" || {
    echo "FAIL: warm daemon output differs from the CLI"
    exit 1
}
STATUS=$("$CTL" --socket "$SOCK" status)
case "$STATUS" in
*" cross_hits=0 "*)
    echo "FAIL: warm request reported no cross-request memo hits"
    echo "status: $STATUS"
    exit 1
    ;;
esac

echo "== admission rejection while the slot is held"
REJECTED=0
for _ in 1 2 3; do
    # shellcheck disable=SC2086
    "$CTL" --socket "$SOCK" --quiet sweep $SLOW_CTL \
        --out "$WORK/slow.json" &
    SLOW_PID=$!
    sleep 0.3
    if ! kill -0 "$SLOW_PID" 2>/dev/null; then
        wait "$SLOW_PID" || true
        echo "   (slow sweep finished before the probe; retrying)"
        continue
    fi
    set +e
    "$CTL" --socket "$SOCK" --quiet sweep $FAST_CTL \
        --out "$WORK/rejected.json" 2>"$WORK/rejected.err"
    RC=$?
    set -e
    wait "$SLOW_PID"
    if [ "$RC" -eq 6 ]; then
        REJECTED=1
        break
    fi
    echo "   (probe exited $RC, want 6; retrying)"
done
if [ "$REJECTED" -ne 1 ]; then
    echo "FAIL: never observed an admission rejection (exit 6)"
    exit 1
fi
if [ -e "$WORK/rejected.json" ]; then
    echo "FAIL: rejected request left an output file behind"
    exit 1
fi

echo "== client killed mid-stream"
# shellcheck disable=SC2086
"$CTL" --socket "$SOCK" --quiet --progress sweep $SLOW_CTL \
    --out "$WORK/interrupted.json" 2>/dev/null &
VICTIM_PID=$!
sleep 0.4
kill -9 "$VICTIM_PID" 2>/dev/null || true
wait "$VICTIM_PID" 2>/dev/null || true
# The daemon must shrug it off and keep serving.
for _ in $(seq 1 100); do
    if "$CTL" --socket "$SOCK" ping >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
"$CTL" --socket "$SOCK" ping >/dev/null
"$CTL" --socket "$SOCK" status >"$WORK/status.after-kill"

echo "== SIGTERM drain with a request in flight"
# shellcheck disable=SC2086
"$CTL" --socket "$SOCK" --quiet sweep $FAST_CTL \
    --out "$WORK/drained.json" &
DRAIN_PID=$!
sleep 0.2
kill -TERM "$DAEMON_PID"
set +e
wait "$DRAIN_PID"
DRAIN_RC=$?
wait "$DAEMON_PID"
DAEMON_RC=$?
set -e
if [ "$DRAIN_RC" -ne 0 ]; then
    echo "FAIL: in-flight request did not survive the drain (exit $DRAIN_RC)"
    exit 1
fi
cmp "$WORK/reference.json" "$WORK/drained.json" || {
    echo "FAIL: drained request's output differs from the CLI"
    exit 1
}
if [ "$DAEMON_RC" -ne 0 ]; then
    echo "FAIL: daemon exited $DAEMON_RC after SIGTERM (want 0)"
    cat "$WORK/daemon.err"
    exit 1
fi
if [ -e "$SOCK" ]; then
    echo "FAIL: daemon left its socket behind"
    exit 1
fi
DAEMON_PID=

echo "== rejected request after shutdown"
set +e
"$CTL" --socket "$SOCK" ping >/dev/null 2>&1
RC=$?
set -e
if [ "$RC" -eq 0 ]; then
    echo "FAIL: ping succeeded after the daemon drained"
    exit 1
fi

echo "PASS: daemon smoke (cold/warm identity, rejection, disconnect, drain)"
