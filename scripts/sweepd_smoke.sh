#!/usr/bin/env bash
# End-to-end smoke test for the sweep daemon:
#
#   1. Start pipecache_sweepd on a Unix socket and wait for readiness.
#   2. Cold and warm daemon sweeps must be byte-identical to the
#      pipecache_sweep CLI on the same grid (the determinism contract).
#   3. A sweep with --deadline-ms 1 must come back as ERR timeout
#      (ctl exit 7) and leave the daemon healthy.
#   4. With --max-inflight 1 --max-queue 0, a request issued while a
#      slow sweep holds the slot must be rejected (ctl exit 6) and the
#      daemon must stay healthy.
#   5. A client SIGKILLed mid-stream must not take the daemon down.
#   6. SIGTERM while a request is in flight must drain: the in-flight
#      client still gets its (byte-identical) result and the daemon
#      exits 0.
#   7. A daemon SIGKILLed mid-sweep and restarted with --journal must
#      recover: the client's --retries re-issue lands on the restarted
#      daemon and its output is byte-identical to the CLI, while the
#      journal replay re-warms the caches (STATUS recovered=1).
#
# All waits are bounded STATUS/ping polls — no fixed sleeps deciding
# correctness, so the script is fast on fast machines and does not
# flake on slow ones.
#
# Usage: sweepd_smoke.sh <pipecache_sweepd> <pipecache_sweepctl> \
#                        <pipecache_sweep> [workdir]
set -euo pipefail

DAEMON=${1:?usage: sweepd_smoke.sh <sweepd> <sweepctl> <sweep> [workdir]}
CTL=${2:?usage: sweepd_smoke.sh <sweepd> <sweepctl> <sweep> [workdir]}
SWEEP=${3:?usage: sweepd_smoke.sh <sweepd> <sweepctl> <sweep> [workdir]}
WORK=${4:-$(mktemp -d)}
mkdir -p "$WORK"

SOCK="$WORK/sweepd.sock"
DAEMON_PID=

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
}
trap cleanup EXIT

# Bounded readiness poll: succeed once ping answers, fail fast if the
# daemon process died, fail after the budget otherwise.
wait_ready() {
    local sock=$1 pid=$2
    for _ in $(seq 1 200); do
        if "$CTL" --socket "$sock" ping >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$pid" 2>/dev/null || {
            echo "FAIL: daemon died during startup"
            return 1
        }
        sleep 0.05
    done
    echo "FAIL: daemon never became ready"
    return 1
}

# Bounded poll until the daemon reports an in-flight request (the
# moment a background sweep actually holds the admission slot), or the
# background client in $2 already exited (its sweep outran the poll).
wait_inflight_or_done() {
    local sock=$1 pid=$2
    for _ in $(seq 1 200); do
        kill -0 "$pid" 2>/dev/null || return 0
        case "$("$CTL" --socket "$sock" status 2>/dev/null)" in
        inflight=0\ *) sleep 0.02 ;;
        inflight=*) return 0 ;;
        *) sleep 0.02 ;;
        esac
    done
    echo "FAIL: no request became in-flight within the poll budget"
    return 1
}

# A fast grid for the byte-identity checks and a slow one to hold the
# admission slot while we provoke rejections and interruptions.
FAST_CLI=(--b 0:3 --isize 1,2,4,8 --scale 2000 --threads 2 --quiet)
FAST_CTL="b=0:3 isize=1,2,4,8 scale=2000 threads=2"
SLOW_CLI=(--b 0:3 --isize 1,2,4,8,16,32 --scale 300 --threads 2 --quiet)
SLOW_CTL="b=0:3 isize=1,2,4,8,16,32 scale=300 threads=2"

echo "== start daemon"
"$DAEMON" --socket "$SOCK" --threads 2 --max-inflight 1 \
    --max-queue 0 >"$WORK/daemon.out" 2>"$WORK/daemon.err" &
DAEMON_PID=$!
wait_ready "$SOCK" "$DAEMON_PID" || { cat "$WORK/daemon.err"; exit 1; }

echo "== cold daemon sweep vs CLI"
"$SWEEP" "${FAST_CLI[@]}" --out "$WORK/reference.json"
# shellcheck disable=SC2086
"$CTL" --socket "$SOCK" --quiet sweep $FAST_CTL --out "$WORK/cold.json"
cmp "$WORK/reference.json" "$WORK/cold.json" || {
    echo "FAIL: cold daemon output differs from the CLI"
    exit 1
}

echo "== warm daemon sweep (cross-request memo)"
# shellcheck disable=SC2086
"$CTL" --socket "$SOCK" sweep $FAST_CTL --out "$WORK/warm.json" \
    2>"$WORK/warm.err"
cmp "$WORK/reference.json" "$WORK/warm.json" || {
    echo "FAIL: warm daemon output differs from the CLI"
    exit 1
}
STATUS=$("$CTL" --socket "$SOCK" status)
case "$STATUS" in
*" cross_hits=0 "*)
    echo "FAIL: warm request reported no cross-request memo hits"
    echo "status: $STATUS"
    exit 1
    ;;
esac

echo "== deadline expiry returns exit 7"
set +e
# shellcheck disable=SC2086
"$CTL" --socket "$SOCK" --quiet --deadline-ms 1 sweep $SLOW_CTL \
    --out "$WORK/deadline.json" 2>"$WORK/deadline.err"
RC=$?
set -e
if [ "$RC" -ne 7 ]; then
    echo "FAIL: 1 ms deadline exited $RC (want 7)"
    cat "$WORK/deadline.err"
    exit 1
fi
if [ -e "$WORK/deadline.json" ]; then
    echo "FAIL: timed-out request left an output file behind"
    exit 1
fi
STATUS=$("$CTL" --socket "$SOCK" status)
case "$STATUS" in
*" timeouts=0 "*)
    echo "FAIL: deadline expiry not counted in STATUS"
    echo "status: $STATUS"
    exit 1
    ;;
esac

echo "== admission rejection while the slot is held"
REJECTED=0
for _ in 1 2 3; do
    # shellcheck disable=SC2086
    "$CTL" --socket "$SOCK" --quiet sweep $SLOW_CTL \
        --out "$WORK/slow.json" &
    SLOW_PID=$!
    wait_inflight_or_done "$SOCK" "$SLOW_PID" || exit 1
    if ! kill -0 "$SLOW_PID" 2>/dev/null; then
        wait "$SLOW_PID" || true
        echo "   (slow sweep finished before the probe; retrying)"
        continue
    fi
    set +e
    "$CTL" --socket "$SOCK" --quiet sweep $FAST_CTL \
        --out "$WORK/rejected.json" 2>"$WORK/rejected.err"
    RC=$?
    set -e
    wait "$SLOW_PID"
    if [ "$RC" -eq 6 ]; then
        REJECTED=1
        break
    fi
    echo "   (probe exited $RC, want 6; retrying)"
done
if [ "$REJECTED" -ne 1 ]; then
    echo "FAIL: never observed an admission rejection (exit 6)"
    exit 1
fi
if [ -e "$WORK/rejected.json" ]; then
    echo "FAIL: rejected request left an output file behind"
    exit 1
fi

echo "== client killed mid-stream"
# shellcheck disable=SC2086
"$CTL" --socket "$SOCK" --quiet --progress sweep $SLOW_CTL \
    --out "$WORK/interrupted.json" 2>/dev/null &
VICTIM_PID=$!
wait_inflight_or_done "$SOCK" "$VICTIM_PID" || exit 1
kill -9 "$VICTIM_PID" 2>/dev/null || true
wait "$VICTIM_PID" 2>/dev/null || true
# The daemon must shrug it off and keep serving.
wait_ready "$SOCK" "$DAEMON_PID" || exit 1
"$CTL" --socket "$SOCK" status >"$WORK/status.after-kill"

echo "== SIGTERM drain with a request in flight"
# shellcheck disable=SC2086
"$CTL" --socket "$SOCK" --quiet sweep $FAST_CTL \
    --out "$WORK/drained.json" &
DRAIN_PID=$!
wait_inflight_or_done "$SOCK" "$DRAIN_PID" || exit 1
kill -TERM "$DAEMON_PID"
set +e
wait "$DRAIN_PID"
DRAIN_RC=$?
wait "$DAEMON_PID"
DAEMON_RC=$?
set -e
if [ "$DRAIN_RC" -ne 0 ]; then
    echo "FAIL: in-flight request did not survive the drain (exit $DRAIN_RC)"
    exit 1
fi
cmp "$WORK/reference.json" "$WORK/drained.json" || {
    echo "FAIL: drained request's output differs from the CLI"
    exit 1
}
if [ "$DAEMON_RC" -ne 0 ]; then
    echo "FAIL: daemon exited $DAEMON_RC after SIGTERM (want 0)"
    cat "$WORK/daemon.err"
    exit 1
fi
if [ -e "$SOCK" ]; then
    echo "FAIL: daemon left its socket behind"
    exit 1
fi
DAEMON_PID=

echo "== rejected request after shutdown"
set +e
"$CTL" --socket "$SOCK" ping >/dev/null 2>&1
RC=$?
set -e
if [ "$RC" -eq 0 ]; then
    echo "FAIL: ping succeeded after the daemon drained"
    exit 1
fi

echo "== daemon SIGKILL + restart: journal recovery, client retry"
"$SWEEP" "${SLOW_CLI[@]}" --out "$WORK/slow-reference.json"
SOCK2="$WORK/sweepd2.sock"
JOURNAL="$WORK/journal.log"
"$DAEMON" --socket "$SOCK2" --threads 2 --max-inflight 1 \
    --max-queue 0 --journal "$JOURNAL" \
    >"$WORK/daemon2.out" 2>"$WORK/daemon2.err" &
DAEMON_PID=$!
wait_ready "$SOCK2" "$DAEMON_PID" || { cat "$WORK/daemon2.err"; exit 1; }

# The victim client re-issues on transport failures; the SIGKILL below
# hits it mid-stream, before its first RESULT byte.
# shellcheck disable=SC2086
"$CTL" --socket "$SOCK2" --quiet --retries 8 --retry-base-ms 100 \
    --retry-seed 1 sweep $SLOW_CTL \
    --out "$WORK/recovered.json" 2>"$WORK/recovered.err" &
VICTIM_PID=$!
wait_inflight_or_done "$SOCK2" "$VICTIM_PID" || exit 1
if ! kill -0 "$VICTIM_PID" 2>/dev/null; then
    echo "FAIL: victim sweep finished before the daemon was killed"
    exit 1
fi
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true

"$DAEMON" --socket "$SOCK2" --threads 2 --max-inflight 1 \
    --max-queue 0 --journal "$JOURNAL" \
    >"$WORK/daemon2b.out" 2>"$WORK/daemon2b.err" &
DAEMON_PID=$!
wait_ready "$SOCK2" "$DAEMON_PID" || { cat "$WORK/daemon2b.err"; exit 1; }

set +e
wait "$VICTIM_PID"
VICTIM_RC=$?
set -e
if [ "$VICTIM_RC" -ne 0 ]; then
    echo "FAIL: retrying client exited $VICTIM_RC across the daemon restart"
    cat "$WORK/recovered.err"
    exit 1
fi
cmp "$WORK/slow-reference.json" "$WORK/recovered.json" || {
    echo "FAIL: retried sweep's output differs from the CLI"
    exit 1
}
if ! grep -q "retried" "$WORK/recovered.err"; then
    echo "FAIL: client never reported its retries"
    cat "$WORK/recovered.err"
    exit 1
fi
if ! grep -q "recovering 1 journaled request" "$WORK/daemon2b.err"; then
    echo "FAIL: restarted daemon did not pick up the journaled request"
    cat "$WORK/daemon2b.err"
    exit 1
fi
# The journal replay runs in the background; give it a bounded window
# to show up in the recovered= counter.
RECOVERED=0
for _ in $(seq 1 200); do
    STATUS=$("$CTL" --socket "$SOCK2" status 2>/dev/null || true)
    case "$STATUS" in
    *" recovered=0 "*) sleep 0.05 ;;
    *" recovered="*) RECOVERED=1; break ;;
    *) sleep 0.05 ;;
    esac
done
if [ "$RECOVERED" -ne 1 ]; then
    echo "FAIL: journal replay never showed up in STATUS recovered="
    echo "status: $STATUS"
    exit 1
fi
"$CTL" --socket "$SOCK2" shutdown >/dev/null
set +e
wait "$DAEMON_PID"
DAEMON_RC=$?
set -e
if [ "$DAEMON_RC" -ne 0 ]; then
    echo "FAIL: recovered daemon exited $DAEMON_RC on shutdown (want 0)"
    cat "$WORK/daemon2b.err"
    exit 1
fi
DAEMON_PID=

echo "PASS: daemon smoke (cold/warm identity, deadline, rejection," \
    "disconnect, drain, kill/restart recovery)"
