#!/usr/bin/env bash
# Kill-and-resume integration test for pipecache_sweep checkpointing.
#
#   1. Run a reference sweep to completion (no checkpointing).
#   2. Start the identical sweep with --checkpoint --checkpoint-every 1
#      and SIGKILL it once the checkpoint holds some completed points.
#   3. Resume from the checkpoint; the final JSON must be
#      byte-identical to the reference run's.
#
# On a machine fast enough that the sweep finishes before the kill
# lands, the test degrades to resuming from a complete checkpoint —
# which still must reproduce the reference bytes while evaluating
# nothing.
#
# Usage: kill_resume_test.sh <path-to-pipecache_sweep> [workdir]
set -euo pipefail

BIN=${1:?usage: kill_resume_test.sh <pipecache_sweep> [workdir]}
WORK=${2:-$(mktemp -d)}
mkdir -p "$WORK"

# ~128 points at --scale 2000: a few seconds of work, long enough to
# kill mid-flight, short enough for CI.
GRID=(--b 0:3 --l 0:1 --isize 1,2,4,8 --dsize 4,8 --penalty 6,10
      --scale 2000 --threads 2 --quiet)

ck_points() {
    grep -c '^ok \|^fail ' "$WORK/ck" 2>/dev/null || echo 0
}

echo "== reference run"
"$BIN" "${GRID[@]}" --out "$WORK/reference.json"

echo "== checkpointed run (to be killed)"
rm -f "$WORK/ck"
"$BIN" "${GRID[@]}" --checkpoint "$WORK/ck" --checkpoint-every 1 \
    --out "$WORK/killed.json" &
PID=$!

# Wait until the checkpoint carries at least a few completed points,
# then kill without warning.
for _ in $(seq 1 400); do
    if [ "$(ck_points)" -ge 5 ]; then
        break
    fi
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.05
done

if kill -0 "$PID" 2>/dev/null; then
    kill -9 "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    echo "== killed mid-sweep at $(ck_points) checkpointed points"
    if [ -e "$WORK/killed.json" ]; then
        echo "FAIL: killed run left a (partial) output file behind"
        exit 1
    fi
else
    wait "$PID" || true
    echo "== sweep finished before the kill; resuming from a full checkpoint"
fi

if [ ! -s "$WORK/ck" ]; then
    echo "FAIL: no checkpoint was written"
    exit 1
fi

echo "== resume from checkpoint"
"$BIN" "${GRID[@]}" --checkpoint "$WORK/ck" --resume \
    --out "$WORK/resumed.json"

if cmp -s "$WORK/reference.json" "$WORK/resumed.json"; then
    echo "PASS: resumed output is byte-identical to the reference"
else
    echo "FAIL: resumed output differs from the reference"
    diff "$WORK/reference.json" "$WORK/resumed.json" | head -20 || true
    exit 1
fi
