#!/usr/bin/env python3
"""Compare two google-benchmark JSON files on the hot kernels.

    scripts/bench_compare.py BASELINE.json NEW.json [--report OUT.md]
                             [--max-regression 0.30]

Checks items_per_second of the guarded benchmarks (BM_StackSim and
every BM_CacheAccess variant) and fails (exit 1) if any regresses by
more than --max-regression relative to the baseline. Benchmarks absent
from either file are reported but do not fail the check (the guard
must not block adding or renaming benchmarks). Writes a Markdown
report for CI artifact upload when --report is given.
"""

import argparse
import json
import sys

GUARDED_PREFIXES = ("BM_StackSim", "BM_CacheAccess")


def items_per_second(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        if not name.startswith(GUARDED_PREFIXES):
            continue
        ips = b.get("items_per_second")
        if ips:
            out[name] = float(ips)
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--report", default=None)
    ap.add_argument("--max-regression", type=float, default=0.30)
    args = ap.parse_args()

    base = items_per_second(args.baseline)
    new = items_per_second(args.new)

    rows = []
    failures = []
    for name in sorted(set(base) | set(new)):
        if name not in base:
            rows.append((name, None, new[name], None, "new"))
            continue
        if name not in new:
            rows.append((name, base[name], None, None, "removed"))
            continue
        ratio = new[name] / base[name]
        status = "ok"
        if ratio < 1.0 - args.max_regression:
            status = "REGRESSION"
            failures.append(
                f"{name}: {base[name]:.3g} -> {new[name]:.3g} items/s "
                f"({ratio:.2f}x, limit {1.0 - args.max_regression:.2f}x)")
        rows.append((name, base[name], new[name], ratio, status))

    lines = ["| benchmark | baseline items/s | new items/s | ratio | status |",
             "|---|---|---|---|---|"]
    for name, b, n, r, status in rows:
        fmt = lambda v: f"{v:.4g}" if v is not None else "-"
        lines.append(f"| {name} | {fmt(b)} | {fmt(n)} | "
                     f"{f'{r:.2f}x' if r is not None else '-'} | {status} |")
    report = "\n".join(["# Perf-smoke comparison", ""] + lines) + "\n"

    print(report)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)

    if not rows:
        print("bench_compare: no guarded benchmarks found", file=sys.stderr)
        return 1
    if failures:
        print("bench_compare: throughput regression beyond "
              f"{args.max_regression:.0%}:", file=sys.stderr)
        for f_ in failures:
            print("  " + f_, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
