/**
 * @file
 * Ablation: robustness of the headline result to the synthetic
 * workload instance.
 *
 * The reproduction's traces are generated, not recorded, so the key
 * scientific question is whether the conclusions depend on the
 * particular pseudo-random instance. This bench regenerates the whole
 * suite under several seed salts (independent programs, branch biases,
 * and data streams — same calibration targets) and re-runs the
 * Figure 12 optimum search for each.
 */

#include "bench_common.hh"
#include "core/tpi_model.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    const double scale = argc > 1 ? std::atof(argv[1]) : 400.0;

    TextTable t("Ablation: Figure 12 optimum across synthetic-workload "
                "instances (P=10)");
    t.setHeader({"seed salt", "best depth", "best total KW",
                 "best TPI ns", "TPI @ b=l=3/64KW"});

    for (const std::uint64_t salt : {0u, 1u, 2u, 3u}) {
        core::SuiteConfig suite;
        suite.scaleDivisor = scale;
        suite.seedSalt = salt;
        core::CpiModel cpi(suite);
        core::TpiModel tpi(cpi);

        double best = 1e18;
        std::uint32_t best_depth = 0;
        std::uint32_t best_total = 0;
        double headline = 0.0;
        for (std::uint32_t total : {8u, 16u, 32u, 64u, 128u}) {
            for (std::uint32_t d = 0; d <= 3; ++d) {
                core::DesignPoint p;
                p.l1iSizeKW = total / 2;
                p.l1dSizeKW = total / 2;
                p.branchSlots = d;
                p.loadSlots = d;
                const double tpi_ns = tpi.evaluate(p).tpiNs;
                if (tpi_ns < best) {
                    best = tpi_ns;
                    best_depth = d;
                    best_total = total;
                }
                if (d == 3 && total == 64)
                    headline = tpi_ns;
            }
        }
        t.addRow({TextTable::num(std::uint64_t{salt}),
                  TextTable::num(std::uint64_t{best_depth}),
                  TextTable::num(std::uint64_t{best_total}),
                  TextTable::num(best, 2),
                  TextTable::num(headline, 2)});
    }
    std::cout << t.render();
    std::cout << "\nThe optimum's location (deep pipeline, large "
                 "cache) must not move with\nthe instance; only the "
                 "TPI value may wiggle.\n";
    return 0;
}
