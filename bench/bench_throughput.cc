/**
 * @file
 * Simulator throughput microbenchmarks (google-benchmark): how fast
 * the substrate itself runs — cache probes, trace generation, full
 * engine replay, and the timing analyzer. Useful when sizing sweeps.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "cpusim/cpi_engine.hh"
#include "sched/branch_sched.hh"
#include "timing/cpu_circuit.hh"
#include "trace/benchmark.hh"
#include "util/random.hh"

using namespace pipecache;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    cache::CacheConfig config;
    config.sizeBytes = 32 * 1024;
    config.blockBytes = 16;
    config.assoc = static_cast<std::uint32_t>(state.range(0));
    cache::Cache cache(config);

    Rng rng(1);
    std::vector<Addr> addrs(4096);
    Addr cursor = 0;
    for (auto &a : addrs) {
        cursor = rng.nextBool(0.75)
                     ? cursor + 4
                     : static_cast<Addr>(rng.nextRange(1 << 20));
        a = cursor;
    }

    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addrs[i], false));
        i = (i + 1) & 4095;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(4);

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto &bench = trace::findBenchmark("small");
    for (auto _ : state) {
        auto trace = bench.record(0, 10000.0);
        benchmark::DoNotOptimize(trace.instCount);
    }
}
BENCHMARK(BM_TraceGeneration);

void
BM_EngineReplay(benchmark::State &state)
{
    const auto &bench = trace::findBenchmark("espresso");
    const auto prog = bench.makeProgram(0);
    trace::DataAddressGenerator dgen(bench.dataConfig(0));
    trace::ExecConfig ec;
    ec.maxInsts = 200000;
    const auto trace = recordTrace(prog, dgen, ec);
    const auto xlat = sched::scheduleBranchDelays(prog, 2);

    for (auto _ : state) {
        cache::HierarchyConfig hc;
        hc.l1i.sizeBytes = 32 * 1024;
        hc.l1d.sizeBytes = 32 * 1024;
        cache::CacheHierarchy hierarchy(hc);
        cpusim::EngineConfig config;
        config.branchSlots = 2;
        config.loadSlots = 2;
        cpusim::CpiEngine engine(config, hierarchy,
                                 {{&prog, &xlat, &trace}});
        engine.runAll();
        benchmark::DoNotOptimize(engine.aggregate().usefulInsts);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * trace.instCount));
    state.SetLabel("items = simulated instructions");
}
BENCHMARK(BM_EngineReplay);

void
BM_TimingAnalysis(benchmark::State &state)
{
    timing::CpuTimingParams params;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            timing::cpuCycleNs(params, {32, 2}, {32, 3}));
    }
}
BENCHMARK(BM_TimingAnalysis);

void
BM_DelaySlotScheduling(benchmark::State &state)
{
    const auto &bench = trace::findBenchmark("gcc");
    const auto prog = bench.makeProgram(0);
    for (auto _ : state) {
        auto xlat = sched::scheduleBranchDelays(prog, 3);
        benchmark::DoNotOptimize(xlat.scheduledStaticInsts());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() *
        static_cast<std::int64_t>(prog.staticInstCount())));
}
BENCHMARK(BM_DelaySlotScheduling);

} // namespace

BENCHMARK_MAIN();
