/**
 * @file
 * Simulator throughput microbenchmarks (google-benchmark): how fast
 * the substrate itself runs — cache probes, trace generation, full
 * engine replay, and the timing analyzer. Useful when sizing sweeps.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <sstream>
#include <string>

#include "cache/cache.hh"
#include "cache/stack_sim.hh"
#include "core/cpi_model.hh"
#include "core/tpi_model.hh"
#include "cpusim/cpi_engine.hh"
#include "sched/branch_sched.hh"
#include "serve/service.hh"
#include "sweep/grid_spec.hh"
#include "sweep/stream_sweep.hh"
#include "sweep/sweep_engine.hh"
#include "timing/cpu_circuit.hh"
#include "trace/benchmark.hh"
#include "trace/source.hh"
#include "trace/trace_io.hh"
#include "util/random.hh"
#include "workloads/registry.hh"

using namespace pipecache;

namespace {

void
BM_CacheAccess(benchmark::State &state)
{
    cache::CacheConfig config;
    config.sizeBytes = 32 * 1024;
    config.blockBytes = 16;
    config.assoc = static_cast<std::uint32_t>(state.range(0));
    cache::Cache cache(config);

    Rng rng(1);
    std::vector<Addr> addrs(4096);
    Addr cursor = 0;
    for (auto &a : addrs) {
        cursor = rng.nextBool(0.75)
                     ? cursor + 4
                     : static_cast<Addr>(rng.nextRange(1 << 20));
        a = cursor;
    }

    // One iteration probes the whole buffer: the measurement is the
    // access kernel, not the benchmark library's per-iteration loop
    // overhead (items_per_second stays per access).
    for (auto _ : state) {
        Counter hits = 0;
        for (const Addr a : addrs)
            hits += cache.access(a, false) ? 1 : 0;
        benchmark::DoNotOptimize(hits);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * addrs.size()));
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(4);

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto &bench = trace::findBenchmark("small");
    for (auto _ : state) {
        auto trace = bench.record(0, 10000.0);
        benchmark::DoNotOptimize(trace.instCount);
    }
}
BENCHMARK(BM_TraceGeneration);

void
BM_EngineReplay(benchmark::State &state)
{
    const auto &bench = trace::findBenchmark("espresso");
    const auto prog = bench.makeProgram(0);
    trace::DataAddressGenerator dgen(bench.dataConfig(0));
    trace::ExecConfig ec;
    ec.maxInsts = 200000;
    const auto trace = recordTrace(prog, dgen, ec);
    const auto xlat = sched::scheduleBranchDelays(prog, 2);

    for (auto _ : state) {
        cache::HierarchyConfig hc;
        hc.l1i.sizeBytes = 32 * 1024;
        hc.l1d.sizeBytes = 32 * 1024;
        cache::CacheHierarchy hierarchy(hc);
        cpusim::EngineConfig config;
        config.branchSlots = 2;
        config.loadSlots = 2;
        cpusim::CpiEngine engine(config, hierarchy,
                                 {{&prog, &xlat, &trace}});
        engine.runAll();
        benchmark::DoNotOptimize(engine.aggregate().usefulInsts);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * trace.instCount));
    state.SetLabel("items = simulated instructions");
}
BENCHMARK(BM_EngineReplay);

void
BM_StackSim(benchmark::State &state)
{
    // One pass over a mixed-locality stream serving an 18-geometry
    // ladder (6 set counts x 3 associativities) — the work that
    // replaces 18 separate cache replays in a factored sweep.
    std::vector<cache::StackGeometry> ladder;
    for (std::uint32_t log2Sets = 4; log2Sets <= 9; ++log2Sets)
        for (const std::uint32_t assoc : {1u, 2u, 4u})
            ladder.push_back({log2Sets, assoc});

    Rng rng(7);
    std::vector<Addr> addrs(1 << 16);
    Addr cursor = 0;
    for (auto &a : addrs) {
        cursor = rng.nextBool(0.75)
                     ? cursor + 4
                     : static_cast<Addr>(rng.nextRange(1 << 20));
        a = cursor;
    }

    for (auto _ : state) {
        cache::StackSimulator sim(16, ladder, 1);
        for (const Addr a : addrs)
            sim.access(0, a, false);
        sim.finish();
        benchmark::DoNotOptimize(sim.counts(4, 1).readMissTotal());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * addrs.size()));
    state.SetLabel("items = accesses (x18 geometries each)");
}
BENCHMARK(BM_StackSim);

/** The same ladder and stream fed through accessBatch() in the
 *  256-record blocks BufferedStreamSink produces. */
void
BM_StackSimBatched(benchmark::State &state)
{
    std::vector<cache::StackGeometry> ladder;
    for (std::uint32_t log2Sets = 4; log2Sets <= 9; ++log2Sets)
        for (const std::uint32_t assoc : {1u, 2u, 4u})
            ladder.push_back({log2Sets, assoc});

    Rng rng(7);
    std::vector<cache::AccessRecord> records(1 << 16);
    Addr cursor = 0;
    for (auto &r : records) {
        cursor = rng.nextBool(0.75)
                     ? cursor + 4
                     : static_cast<Addr>(rng.nextRange(1 << 20));
        r = {cursor, 0, 0};
    }

    constexpr std::size_t kBatch =
        cpusim::BufferedStreamSink::kCapacity;
    for (auto _ : state) {
        cache::StackSimulator sim(16, ladder, 1);
        for (std::size_t at = 0; at < records.size(); at += kBatch) {
            sim.accessBatch(
                {records.data() + at,
                 std::min(kBatch, records.size() - at)});
        }
        sim.finish();
        benchmark::DoNotOptimize(sim.counts(4, 1).readMissTotal());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * records.size()));
    state.SetLabel("items = accesses (x18 geometries each)");
}
BENCHMARK(BM_StackSimBatched);

/** The pre-refactor scalar engine on the same stream: the honest
 *  yardstick the vectorized engine is measured against. */
void
BM_StackSimReference(benchmark::State &state)
{
    std::vector<cache::StackGeometry> ladder;
    for (std::uint32_t log2Sets = 4; log2Sets <= 9; ++log2Sets)
        for (const std::uint32_t assoc : {1u, 2u, 4u})
            ladder.push_back({log2Sets, assoc});

    Rng rng(7);
    std::vector<Addr> addrs(1 << 16);
    Addr cursor = 0;
    for (auto &a : addrs) {
        cursor = rng.nextBool(0.75)
                     ? cursor + 4
                     : static_cast<Addr>(rng.nextRange(1 << 20));
        a = cursor;
    }

    for (auto _ : state) {
        cache::StackSimulator sim(
            16, ladder, 1, cache::StackSimImpl::ScalarReference);
        for (const Addr a : addrs)
            sim.access(0, a, false);
        sim.finish();
        benchmark::DoNotOptimize(sim.counts(4, 1).readMissTotal());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * addrs.size()));
    state.SetLabel("items = accesses (x18 geometries each)");
}
BENCHMARK(BM_StackSimReference);

core::SuiteConfig
sweepSuite()
{
    core::SuiteConfig config;
    config.scaleDivisor = 10000.0;
    config.quantum = 5000;
    config.benchmarks = {"small", "linpack", "yacc"};
    return config;
}

std::vector<core::DesignPoint>
sweepGrid()
{
    // fig3-shaped with a D-size axis: 6 I-sizes x 2 D-sizes x 4
    // branch depths x 2 load depths = 96 points over 4 access streams.
    std::vector<core::DesignPoint> points;
    for (const std::uint32_t ikw : {1u, 2u, 4u, 8u, 16u, 32u}) {
        for (const std::uint32_t dkw : {2u, 8u}) {
            for (std::uint32_t b = 0; b <= 3; ++b) {
                for (const std::uint32_t l : {0u, 2u}) {
                    core::DesignPoint p;
                    p.l1iSizeKW = ikw;
                    p.l1dSizeKW = dkw;
                    p.branchSlots = b;
                    p.loadSlots = l;
                    points.push_back(p);
                }
            }
        }
    }
    return points;
}

void
runSweepBench(benchmark::State &state, bool factored)
{
    const std::vector<core::DesignPoint> grid = sweepGrid();
    for (auto _ : state) {
        // Fresh model per iteration: the point of the measurement is
        // cold-grid cost, not the memo cache.
        core::CpiModel cpi(sweepSuite());
        core::TpiModel tpi(cpi);
        sweep::SweepOptions opts;
        opts.threads = 1;
        opts.factored = factored;
        sweep::SweepEngine engine(tpi, opts);
        const auto records = engine.sweep(grid);
        benchmark::DoNotOptimize(records.front().metrics.cpi);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * sweepGrid().size()));
    state.SetLabel("items = design points");
}

void
BM_FactoredSweep(benchmark::State &state)
{
    runSweepBench(state, true);
}
BENCHMARK(BM_FactoredSweep)->Unit(benchmark::kMillisecond);

void
BM_MonolithicSweep(benchmark::State &state)
{
    runSweepBench(state, false);
}
BENCHMARK(BM_MonolithicSweep)->Unit(benchmark::kMillisecond);

void
BM_SweepdWarmVsCold(benchmark::State &state)
{
    // Arg(0): every request hits a cold service (what a CLI user
    // pays). Arg(1): the service was warmed by one prior identical
    // request, so the whole grid is memo-served — the daemon's value
    // proposition in one number.
    const bool warm = state.range(0) != 0;
    const std::vector<core::DesignPoint> grid = sweepGrid();
    const core::SuiteConfig suite = sweepSuite();
    serve::ServiceOptions opts;
    opts.threads = 1;
    serve::RequestOptions reqOpts;
    reqOpts.threads = 1;
    auto service = std::make_unique<serve::SweepService>(opts);
    if (warm)
        service->runPoints(grid, "bench", suite, reqOpts);
    for (auto _ : state) {
        if (!warm) {
            state.PauseTiming();
            service = std::make_unique<serve::SweepService>(opts);
            state.ResumeTiming();
        }
        const serve::SweepResponse resp =
            service->runPoints(grid, "bench", suite, reqOpts);
        benchmark::DoNotOptimize(resp.json.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * grid.size()));
    state.SetLabel(warm ? "warm daemon request (memo-served)"
                        : "cold daemon request");
}
BENCHMARK(BM_SweepdWarmVsCold)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_TimingAnalysis(benchmark::State &state)
{
    timing::CpuTimingParams params;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            timing::cpuCycleNs(params, {32, 2}, {32, 3}));
    }
}
BENCHMARK(BM_TimingAnalysis);

void
BM_DelaySlotScheduling(benchmark::State &state)
{
    const auto &bench = trace::findBenchmark("gcc");
    const auto prog = bench.makeProgram(0);
    for (auto _ : state) {
        auto xlat = sched::scheduleBranchDelays(prog, 3);
        benchmark::DoNotOptimize(xlat.scheduledStaticInsts());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() *
        static_cast<std::int64_t>(prog.staticInstCount())));
}
BENCHMARK(BM_DelaySlotScheduling);

void
BM_DinParse(benchmark::State &state)
{
    // A representative recorded stream, serialized once; the
    // measurement is the parser (readDin), per record.
    workloads::WorkloadOptions wopts;
    wopts.records = 1 << 16;
    auto source = workloads::openWorkload("zipf-hot", wopts);
    const auto records = trace::drain(*source);
    std::ostringstream os;
    trace::writeDinRecords(os, records);
    const std::string text = os.str();

    for (auto _ : state) {
        std::istringstream is(text);
        const auto back = trace::readDin(is);
        benchmark::DoNotOptimize(back.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * records.size()));
}
BENCHMARK(BM_DinParse);

void
BM_WorkloadStream(benchmark::State &state)
{
    // Registry workload generation throughput: how fast a named
    // scenario can emit records through the TraceSource interface.
    workloads::WorkloadOptions wopts;
    wopts.records = 1 << 16;
    for (auto _ : state) {
        auto source = workloads::openWorkload("random-mix", wopts);
        std::array<trace::TraceRecord, 4096> batch;
        std::size_t total = 0;
        std::size_t got = 0;
        while ((got = source->fill(batch)) != 0)
            total += got;
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * (std::size_t{1} << 16)));
}
BENCHMARK(BM_WorkloadStream);

void
BM_StreamSweep(benchmark::State &state)
{
    // The full external-stream evaluation path: one recorded stream
    // against a small design grid, per record.
    workloads::WorkloadOptions wopts;
    wopts.records = 1 << 15;
    auto source = workloads::openWorkload("hot-cold", wopts);
    const auto stream = trace::drain(*source);

    sweep::GridSpec grid;
    grid.set("isize", "1,4,16");
    grid.set("dsize", "1,4,16");
    const auto points = grid.build();

    for (auto _ : state) {
        const auto result = sweep::sweepStream(stream, points);
        benchmark::DoNotOptimize(result.records.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * stream.size()));
}
BENCHMARK(BM_StreamSweep);

} // namespace

#ifndef PIPECACHE_BUILD_TYPE
#define PIPECACHE_BUILD_TYPE ""
#endif

int
main(int argc, char **argv)
{
    // Stamp the run with *this binary's* configuration. The benchmark
    // library's own "library_build_type" context describes the
    // installed libbenchmark, not our code, so scripts/run_bench.sh
    // gates baselines on these keys instead.
    const std::string buildType = PIPECACHE_BUILD_TYPE;
    benchmark::AddCustomContext("pipecache_build_type",
                                buildType.empty() ? "unknown"
                                                  : buildType);
#ifdef NDEBUG
    const bool optimized =
        buildType == "Release" || buildType == "RelWithDebInfo";
#else
    const bool optimized = false;
#endif
    benchmark::AddCustomContext("pipecache_optimized",
                                optimized ? "1" : "0");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
