/** Reproduces Figure 7 of the paper; see core/experiments.hh. */
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel model(bench::suiteFromArgs(argc, argv));
    std::cout << core::experiments::fig7(model).render();
    return 0;
}
