/**
 * @file
 * Ablation: set-associativity versus pipeline depth — the paper's
 * closing suggestion: "If t_CPU is less dependent on the access time
 * of pipelined L1 caches, then increasing the associativity of the
 * cache to lower the miss ratio will have a larger performance
 * benefit for pipelined caches."
 *
 * At depth 1, the associativity's comparator/mux delay lands straight
 * on the cycle time; at depth 3 the ALU loop hides it, so only the
 * miss-ratio benefit remains. The TPI columns make the revived
 * tradeoff visible.
 */

#include "bench_common.hh"
#include "core/tpi_model.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel cpi(bench::suiteFromArgs(argc, argv));
    core::TpiModel tpi(cpi);

    TextTable t("Ablation: associativity x pipeline depth "
                "(8KW+8KW, P=10, b=l=depth)");
    t.setHeader({"assoc", "depth", "D miss %", "CPI", "t_CPU ns",
                 "TPI ns"});

    for (std::uint32_t assoc : {1u, 2u, 4u}) {
        for (std::uint32_t depth : {1u, 3u}) {
            core::DesignPoint p;
            p.assoc = assoc;
            p.branchSlots = depth;
            p.loadSlots = depth;
            const auto r = tpi.evaluate(p);
            const auto &res = cpi.evaluate(p);
            t.addRow({TextTable::num(std::uint64_t{assoc}),
                      TextTable::num(std::uint64_t{depth}),
                      TextTable::num(100.0 * res.l1d.missRate(), 2),
                      TextTable::num(r.cpi, 3),
                      TextTable::num(r.tCpuNs, 2),
                      TextTable::num(r.tpiNs, 2)});
        }
    }
    std::cout << t.render();
    std::cout << "\nCompare the TPI delta of assoc 1->4 at depth 1 "
                 "(cycle-time-bound)\nversus depth 3 (ALU-bound): "
                 "pipelining pays for associativity.\n";
    return 0;
}
