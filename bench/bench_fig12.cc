/** Reproduces Figure 12 of the paper; see core/experiments.hh. */
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel cpi(bench::suiteFromArgs(argc, argv));
    core::TpiModel tpi(cpi);
    std::cout << core::experiments::fig12(tpi).render();
    std::cout << "\n"
              << core::experiments::fig12Dynamic(tpi).render();
    return 0;
}
