/** Reproduces Table 1 of the paper; see core/experiments.hh. */
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel model(bench::suiteFromArgs(argc, argv));
    std::cout << core::experiments::table1(model).render();
    return 0;
}
