/** Reproduces Figure 9 of the paper; see core/experiments.hh. */
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel cpi(bench::suiteFromArgs(argc, argv));
    core::TpiModel tpi(cpi);
    std::cout << core::experiments::fig9(tpi).render();
    return 0;
}
