/**
 * @file
 * Ablation: static prediction sources versus the BTB.
 *
 * The paper uses BTFNT and remarks that profile-guided static
 * prediction ([HCC89, KT91]) is "competitive with much larger BTBs".
 * This bench puts the three on one axis: BTFNT squashing,
 * profile-guided squashing (majority direction from a training run),
 * and the 256-entry BTB, for b = 1..3.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel model(bench::suiteFromArgs(argc, argv));

    TextTable t("Ablation: branch dCPI by prediction source "
                "(8KW+8KW, P=10)");
    t.setHeader({"b", "BTFNT", "profile", "BTB-256", "profile predT %",
                 "profile corr %"});

    for (std::uint32_t b = 1; b <= 3; ++b) {
        core::DesignPoint btfnt;
        btfnt.branchSlots = b;

        core::DesignPoint prof = btfnt;
        prof.predictSource = sched::PredictSource::Profile;

        core::DesignPoint btb = btfnt;
        btb.branchScheme = cpusim::BranchScheme::Btb;

        const auto &rp = model.evaluate(prof);
        const double total_ctis =
            static_cast<double>(rp.aggregate.ctis);
        const double pt = 100.0 *
                          static_cast<double>(
                              rp.aggregate.predTakenCtis) /
                          total_ctis;
        const double corr =
            100.0 *
            static_cast<double>(rp.aggregate.predTakenCorrect +
                                rp.aggregate.predNotTakenCorrect) /
            total_ctis;

        t.addRow({TextTable::num(std::uint64_t{b}),
                  TextTable::num(
                      model.evaluate(btfnt).aggregate.branchCpi(), 3),
                  TextTable::num(rp.aggregate.branchCpi(), 3),
                  TextTable::num(
                      model.evaluate(btb).aggregate.branchCpi(), 3),
                  TextTable::num(pt, 1), TextTable::num(corr, 1)});
    }
    std::cout << t.render();
    std::cout << "\n(The profile is self-trained on the same trace — "
                 "an upper bound for\nprofile-guided prediction, per "
                 "the paper's citation of [HCC89].)\n";
    return 0;
}
