/** Reproduces Table 6 (timing analysis); no simulation needed. */
#include <iostream>

#include "core/experiments.hh"

int
main()
{
    using namespace pipecache;
    std::cout << core::experiments::table6().render();
    return 0;
}
