/** Reproduces Table 6 of the paper; see core/experiments.hh.
 *
 * The timing-only variant needs no simulation; with an argument (the
 * scale divisor) the cycle-time columns are instead read off
 * batch-evaluated grid points shared with Figures 3/4, exercising the
 * sweep engine's memo cache end-to-end.
 */
#include "bench_common.hh"
#include "sweep/sweep_engine.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    if (argc <= 1) {
        std::cout << core::experiments::table6().render();
        return 0;
    }
    core::CpiModel model(bench::suiteFromArgs(argc, argv));
    core::TpiModel tpi(model);
    sweep::SweepOptions opts;
    opts.threads = bench::threadsFromEnv();
    sweep::SweepEngine engine(tpi, opts);
    std::cout << core::experiments::table6(engine).render();
    return 0;
}
