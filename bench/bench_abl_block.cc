/**
 * @file
 * Ablation: block size versus refill rate.
 *
 * The paper states that "for each value of miss penalty the block
 * size was selected to achieve the lowest CPI" (Section 3.1) and then
 * uses B = 4 W at P = 10. This bench recomputes that choice: for each
 * refill rate (4/2/1 words per cycle + 2-cycle startup), sweep the
 * block size with the penalty derived from the refill model, and
 * report total CPI. Fast refill favors long blocks (prefetch effect);
 * slow refill punishes them.
 */

#include "bench_common.hh"
#include "cache/memory.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel model(bench::suiteFromArgs(argc, argv));

    TextTable t("Ablation: total CPI vs. block size per refill rate "
                "(8KW+8KW L1, b=l=2, penalty = 2 + B/rate)");
    t.setHeader({"block W", "rate 4 W/cyc", "rate 2 W/cyc",
                 "rate 1 W/cyc"});

    for (std::uint32_t block_words : {1u, 2u, 4u, 8u, 16u}) {
        std::vector<std::string> row{
            TextTable::num(std::uint64_t{block_words})};
        for (std::uint32_t rate : {4u, 2u, 1u}) {
            const cache::RefillConfig refill{2, rate};
            const auto penalty = cache::MissPenalty::fromRefill(
                refill, block_words * bytesPerWord);

            core::DesignPoint p;
            p.branchSlots = 2;
            p.loadSlots = 2;
            p.blockWords = block_words;
            p.missPenaltyCycles = penalty.cycles();
            const double cpi = model.evaluate(p).cpi();
            row.push_back(TextTable::num(cpi, 3) + " (P=" +
                          std::to_string(penalty.cycles()) + ")");
        }
        t.addRow(std::move(row));
    }
    std::cout << t.render();
    return 0;
}
