/**
 * @file
 * Ablation: multiprogramming context-switch interval.
 *
 * The paper's traces are multiprogrammed; this bench shows why that
 * matters for primary-cache sizing: shorter scheduling quanta mean
 * each process finds less of its working set in the shared physical
 * caches when it returns, inflating miss CPI — an effect a
 * uniprogrammed trace would hide entirely.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    const double scale = argc > 1 ? std::atof(argv[1]) : 200.0;

    TextTable t("Ablation: CPI vs. context-switch quantum "
                "(8KW+8KW, b=l=2, P=10)");
    t.setHeader({"quantum insts", "CPI", "I-miss CPI", "D-miss CPI"});

    for (const Counter quantum :
         {5000u, 20000u, 50000u, 200000u, 1000000u}) {
        core::SuiteConfig suite;
        suite.scaleDivisor = scale;
        suite.quantum = quantum;
        core::CpiModel model(suite);

        core::DesignPoint p;
        p.branchSlots = 2;
        p.loadSlots = 2;
        const auto &res = model.evaluate(p);
        t.addRow({TextTable::num(std::uint64_t{quantum}),
                  TextTable::num(res.cpi(), 3),
                  TextTable::num(res.aggregate.iMissCpi(), 3),
                  TextTable::num(res.aggregate.dMissCpi(), 3)});
    }
    std::cout << t.render();
    return 0;
}
