/**
 * @file
 * Ablation: additive CPI accounting vs. a cycle-accurate pipeline.
 *
 * The paper's methodology (and our CpiEngine) adds stall sources —
 * miss cycles, branch waste, load delays — as if they never overlap.
 * This bench replays the same workloads through the scoreboarded
 * in-order pipeline (cpusim/pipeline_sim) and reports both CPIs.
 * Interlocked hardware also hides load delays using the *dynamic*
 * distance of the unscheduled code, so the pipeline lands between the
 * additive engine's static and dynamic load schemes — both effects
 * are visible in the columns.
 */

#include "bench_common.hh"
#include "cpusim/pipeline_sim.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel model(bench::suiteFromArgs(argc, argv));

    TextTable t("Ablation: additive accounting vs. cycle-accurate "
                "pipeline (8KW+8KW, P=10, b=l=depth)");
    t.setHeader({"depth", "additive static", "additive dynamic",
                 "pipeline (interlock)", "overlap error %"});

    for (std::uint32_t depth = 0; depth <= 3; ++depth) {
        core::DesignPoint p;
        p.branchSlots = depth;
        p.loadSlots = depth;
        const double add_static = model.evaluate(p).cpi();

        core::DesignPoint pd = p;
        pd.loadScheme = cpusim::LoadScheme::Dynamic;
        const double add_dynamic = model.evaluate(pd).cpi();

        // Cycle-accurate run: same artifacts, benchmarks back-to-back
        // against one shared hierarchy.
        cache::CacheHierarchy hierarchy(p.hierarchyConfig());
        cpusim::PipelineStats total;
        for (std::size_t i = 0; i < model.numBenchmarks(); ++i) {
            cpusim::PipelineConfig pc;
            pc.branchSlots = depth;
            pc.loadSlots = depth;
            cpusim::PipelineSim sim(pc, hierarchy, model.program(i),
                                    model.xlat(i, depth),
                                    model.traceOf(i));
            const auto &s = sim.run();
            total.cycles += s.cycles;
            total.usefulInsts += s.usefulInsts;
            total.loadInterlockCycles += s.loadInterlockCycles;
        }
        const double pipe_cpi = total.cpi();

        // Overlap error: the additive model with the same (dynamic-
        // distance) load policy, relative to the real machine.
        const double err =
            100.0 * (add_dynamic - pipe_cpi) / pipe_cpi;

        t.addRow({TextTable::num(std::uint64_t{depth}),
                  TextTable::num(add_static, 3),
                  TextTable::num(add_dynamic, 3),
                  TextTable::num(pipe_cpi, 3),
                  TextTable::num(err, 2)});
    }
    std::cout << t.render();
    std::cout
        << "\nThe pipeline interlocks on unscheduled code, so its "
           "load-delay cost sits\nbetween the additive engine's "
           "static (compile-time motion only) and dynamic\n(perfect "
           "reordering) policies; the residual difference vs. the "
           "dynamic column\nis the stall-overlap error of additive "
           "accounting.\n";
    return 0;
}
