/**
 * @file
 * Ablation: sensitivity of the headline optimum to the timing
 * constants.
 *
 * Our GaAs/MCM constants are calibrated to the paper's anchors, not
 * measured from its netlist, so this sweep asks the reproduction's
 * most important robustness question: across plausible perturbations
 * of t_SRAM, latch overhead, driver delay, and ALU speed, does the
 * "2-3 pipeline stages + large cache" conclusion survive? (CPI
 * surfaces are reused from the memoized model; only timing varies.)
 */

#include "bench_common.hh"
#include "core/sensitivity.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel model(bench::suiteFromArgs(argc, argv, 400.0));

    TextTable t("Ablation: Figure 12 optimum vs. timing constants "
                "(P=10; * marks the calibrated value)");
    t.setHeader({"parameter", "value", "best depth", "best total KW",
                 "best TPI ns", "t_CPU ns"});

    const auto rows = core::sensitivitySweep(
        model, core::defaultTimingParameters());
    for (const auto &row : rows) {
        t.addRow({row.parameter,
                  TextTable::num(row.value, 2) +
                      (row.isNominal ? " *" : ""),
                  TextTable::num(std::uint64_t{row.optimum.depth}),
                  TextTable::num(std::uint64_t{row.optimum.totalKW}),
                  TextTable::num(row.optimum.tpiNs, 2),
                  TextTable::num(row.optimum.tCpuNs, 2)});
    }
    std::cout << t.render();
    std::cout << "\nThe optimum should stay at depth 3 with a large "
                 "cache across the sweeps;\nonly the TPI value moves "
                 "with the constants.\n";
    return 0;
}
