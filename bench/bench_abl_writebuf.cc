/**
 * @file
 * Ablation: store-handling policy.
 *
 * The reproduction's default (matching the paper's accounting)
 * charges store misses the full penalty (write-back, write-allocate).
 * This bench compares that against a write-through L1-D with a small
 * write buffer, sweeping buffer depth: a few entries absorb nearly
 * all store-miss stalls at the suite's 8.7% store fraction.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel model(bench::suiteFromArgs(argc, argv));

    TextTable t("Ablation: store policy (8KW+8KW, b=l=2, P=10)");
    t.setHeader({"policy", "CPI", "D-miss CPI"});

    core::DesignPoint wb;
    wb.branchSlots = 2;
    wb.loadSlots = 2;
    {
        const auto &res = model.evaluate(wb);
        t.addRow({"write-back, write-allocate",
                  TextTable::num(res.cpi(), 3),
                  TextTable::num(res.aggregate.dMissCpi(), 3)});
    }

    for (std::uint32_t entries : {1u, 2u, 4u, 8u}) {
        core::DesignPoint p = wb;
        p.writeThroughBuffer = true;
        p.writeBufferConfig.entries = entries;
        p.writeBufferConfig.drainCycles = 3;
        const auto &res = model.evaluate(p);
        t.addRow({"write-through + " + std::to_string(entries) +
                      "-entry buffer",
                  TextTable::num(res.cpi(), 3),
                  TextTable::num(res.aggregate.dMissCpi(), 3)});
    }
    std::cout << t.render();
    return 0;
}
