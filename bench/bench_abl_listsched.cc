/**
 * @file
 * Ablation: three ways to account for load delay slots.
 *
 *   analytic static   — the paper's model (Table 5): expected
 *                       shortfall over the block-bounded e-distribution;
 *   list-scheduled    — a real critical-path list scheduler reorders
 *                       every block, a scoreboard replays the trace;
 *   analytic dynamic  — the unbounded-reordering lower bound.
 *
 * Agreement between the first two validates the paper's abstraction;
 * the gap to the third is what out-of-order issue buys.
 */

#include "bench_common.hh"
#include "sched/list_sched.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel model(bench::suiteFromArgs(argc, argv));

    TextTable t("Ablation: load-delay stall CPI across the suite");
    t.setHeader({"l", "analytic static", "list-scheduled",
                 "analytic dynamic"});

    Counter insts = 0;
    for (std::size_t i = 0; i < model.numBenchmarks(); ++i)
        insts += model.traceOf(i).instCount;
    const auto &analytic = model.loadDelayStats();

    for (std::uint32_t l = 1; l <= 3; ++l) {
        Counter scheduled = 0;
        for (std::size_t i = 0; i < model.numBenchmarks(); ++i) {
            scheduled += sched::evaluateListScheduling(
                             model.program(i), model.traceOf(i), l)
                             .stallCycles;
        }
        auto cpi = [&](Counter cycles) {
            return TextTable::num(static_cast<double>(cycles) /
                                      static_cast<double>(insts),
                                  3);
        };
        t.addRow({TextTable::num(std::uint64_t{l}),
                  cpi(analytic.totalDelayCycles(l, false)),
                  cpi(scheduled),
                  cpi(analytic.totalDelayCycles(l, true))});
    }
    std::cout << t.render();
    std::cout
        << "\nThe real scheduler lands between the paper's analytic "
           "bound (column 1,\nconservative: it cannot see "
           "multi-instruction motion such as hoisting a\nload's "
           "address computation along with it) and the unbounded "
           "reordering\nbound (column 3).\n";
    return 0;
}
