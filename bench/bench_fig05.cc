/** Reproduces Figure 5 (CPI vs t_CPU, constant-time penalty). */
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel model(bench::suiteFromArgs(argc, argv));
    std::cout << core::experiments::fig5(model).render();
    return 0;
}
