/**
 * @file
 * Ablation: the full two-level hierarchy behind the flat penalty.
 *
 * The paper's Section 3 experiments assume a constant L1 miss penalty
 * — in effect an L2 that always hits. This bench runs the real
 * Figure 1 hierarchy (unified L2 + DRAM refill) and sweeps the L2
 * size, showing when the flat-penalty abstraction is faithful (L2
 * large enough to hold the multiprogrammed working set) and when it
 * is optimistic.
 */

#include <iostream>

#include "bench_common.hh"
#include "cache/hierarchy.hh"
#include "cpusim/cpi_engine.hh"
#include "sched/branch_sched.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel model(bench::suiteFromArgs(argc, argv));

    // Build the shared workloads once via the model's artifacts.
    std::vector<cpusim::BenchWorkload> workloads;
    for (std::size_t i = 0; i < model.numBenchmarks(); ++i) {
        cpusim::BenchWorkload w;
        w.program = &model.program(i);
        w.xlat = &model.xlat(i, 2);
        w.trace = &model.traceOf(i);
        workloads.push_back(w);
    }

    TextTable t("Ablation: full L2 hierarchy vs. flat penalty "
                "(8KW+8KW L1, b=l=2, L2 hit 10cyc, memory +40cyc)");
    t.setHeader({"L2", "CPI", "L1D miss %", "L2 miss %",
                 "mem refs/kinst"});

    auto run = [&](const char *label,
                   std::optional<std::uint64_t> l2_bytes) {
        cache::HierarchyConfig hc;
        hc.l1i.sizeBytes = kiloWordsToBytes(8);
        hc.l1i.blockBytes = 16;
        hc.l1d.sizeBytes = kiloWordsToBytes(8);
        hc.l1d.blockBytes = 16;
        if (l2_bytes) {
            hc.flatPenalty.reset();
            hc.l2.sizeBytes = *l2_bytes;
            hc.l2.blockBytes = 64;
            hc.l2HitCycles = 10;
            hc.memoryCycles = 40;
        } else {
            hc.flatPenalty = 10;
        }
        cache::CacheHierarchy hierarchy(hc);

        cpusim::EngineConfig ec;
        ec.branchSlots = 2;
        ec.loadSlots = 2;
        cpusim::CpiEngine engine(ec, hierarchy, workloads);
        engine.run(model.schedule());
        const auto agg = engine.aggregate();

        const double l1d_miss = 100.0 * hierarchy.l1d().stats().missRate();
        double l2_miss = 0.0;
        if (hierarchy.l2())
            l2_miss = 100.0 * hierarchy.l2()->stats().missRate();
        const double mem_per_kinst =
            hierarchy.l2()
                ? 1000.0 *
                      static_cast<double>(hierarchy.stats().l2Misses) /
                      static_cast<double>(agg.usefulInsts)
                : 0.0;

        t.addRow({label, TextTable::num(agg.cpi(), 3),
                  TextTable::num(l1d_miss, 2),
                  TextTable::num(l2_miss, 2),
                  TextTable::num(mem_per_kinst, 2)});
    };

    run("flat P=10 (paper)", std::nullopt);
    for (std::uint64_t kb : {128u, 256u, 512u, 1024u, 4096u})
        run((std::to_string(kb) + " KB").c_str(),
            std::uint64_t{kb} * 1024);

    std::cout << t.render();
    return 0;
}
