/**
 * @file
 * Ablation: BTB geometry.
 *
 * The paper fixes the BTB at 256 entries because that is the largest
 * SRAM with single-cycle access at the target cycle time. This bench
 * shows what that constraint costs: prediction quality and branch CPI
 * versus entry count and associativity (at b = 2). The flattening of
 * the curve past a few hundred entries is why profiling-based static
 * schemes are competitive (the paper's [HCC89, KT91] remark).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel model(bench::suiteFromArgs(argc, argv));

    TextTable t("Ablation: BTB geometry at b=2 (8KW+8KW L1, P=10)");
    t.setHeader({"entries", "assoc", "hit %", "correct %", "cyc/CTI",
                 "branch dCPI", "storage B"});

    for (std::uint32_t entries : {16u, 64u, 256u, 1024u, 4096u}) {
        for (std::uint32_t assoc : {1u, 4u}) {
            core::DesignPoint p;
            p.branchSlots = 2;
            p.branchScheme = cpusim::BranchScheme::Btb;
            p.btb.entries = entries;
            p.btb.assoc = assoc;
            const auto &res = model.evaluate(p);
            const auto &bs = res.btb;
            const double hit =
                100.0 * static_cast<double>(bs.hits) /
                static_cast<double>(bs.lookups);
            const double correct =
                100.0 * static_cast<double>(bs.correct) /
                static_cast<double>(bs.lookups);
            t.addRow({TextTable::num(std::uint64_t{entries}),
                      TextTable::num(std::uint64_t{assoc}),
                      TextTable::num(hit, 1),
                      TextTable::num(correct, 1),
                      TextTable::num(res.aggregate.cyclesPerCti(), 2),
                      TextTable::num(res.aggregate.branchCpi(), 3),
                      TextTable::num(p.btb.storageBytes())});
        }
    }
    std::cout << t.render();

    core::DesignPoint squash;
    squash.branchSlots = 2;
    std::cout << "\nsquashing delayed branches (software): branch dCPI "
              << TextTable::num(
                     model.evaluate(squash).aggregate.branchCpi(), 3)
              << " with zero prediction hardware\n";
    return 0;
}
