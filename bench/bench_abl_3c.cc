/**
 * @file
 * Ablation: 3C decomposition of the L1-I and L1-D miss curves.
 *
 * Explains the shapes behind Figures 3/4/8: which part of the miss
 * rate responds to cache size (capacity), which to associativity or
 * layout (conflict), and which is irreducible at a given trace length
 * (compulsory — also the scale-divisor artifact short reproductions
 * must watch for).
 */

#include "bench_common.hh"
#include "cache/three_c.hh"
#include "trace/trace_io.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel model(bench::suiteFromArgs(argc, argv));

    TextTable t("Ablation: 3C miss decomposition vs. cache size "
                "(direct-mapped, 16B blocks, multiprogrammed suite)");
    t.setHeader({"cache", "size KW", "miss %", "compulsory %",
                 "capacity %", "conflict %"});

    for (const bool iside : {true, false}) {
        for (std::uint32_t kw : {1u, 4u, 16u}) {
            cache::CacheConfig config;
            config.name = iside ? "L1-I" : "L1-D";
            config.sizeBytes = kiloWordsToBytes(kw);
            config.blockBytes = 16;
            cache::ThreeCCache cache(config);

            // Replay the multiprogrammed reference stream.
            for (const auto &slice : model.schedule().slices()) {
                const auto &trace = model.traceOf(slice.bench);
                const auto &prog = model.program(slice.bench);
                for (std::uint32_t b = slice.blockBegin;
                     b < slice.blockEnd; ++b) {
                    const auto &ev = trace.blocks[b];
                    if (iside) {
                        const Addr base = prog.blockAddr(ev.block);
                        const auto len = static_cast<std::uint32_t>(
                            prog.block(ev.block).size());
                        for (std::uint32_t k = 0; k < len; ++k)
                            cache.access(base + k * bytesPerWord,
                                         false);
                    } else {
                        const auto [begin, end] = trace.memRange(b);
                        for (std::uint32_t m = begin; m < end; ++m) {
                            cache.access(trace.memRefs[m].addr,
                                         trace.memRefs[m].store != 0);
                        }
                    }
                }
            }

            const auto &s = cache.stats();
            const double miss_pct =
                100.0 * static_cast<double>(s.misses()) /
                static_cast<double>(s.accesses);
            t.addRow({config.name, TextTable::num(std::uint64_t{kw}),
                      TextTable::num(miss_pct, 2),
                      TextTable::num(100.0 * s.fraction(s.compulsory),
                                     1),
                      TextTable::num(100.0 * s.fraction(s.capacity),
                                     1),
                      TextTable::num(100.0 * s.fraction(s.conflict),
                                     1)});
        }
    }
    std::cout << t.render();
    std::cout << "\nCapacity misses shrink with size (the Figure 3/8 "
                 "slopes); conflict misses\nare what associativity "
                 "would recover (bench_abl_assoc); the compulsory\n"
                 "share is bounded by trace length — rerun with a "
                 "smaller scale divisor\nto watch it drop.\n";
    return 0;
}
