/** Reproduces Figure 3 of the paper; see core/experiments.hh. The
 *  candidate grid runs through the parallel sweep engine
 *  (PIPECACHE_THREADS overrides the worker count). */
#include "bench_common.hh"
#include "sweep/sweep_engine.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel model(bench::suiteFromArgs(argc, argv));
    core::TpiModel tpi(model);
    sweep::SweepOptions opts;
    opts.threads = bench::threadsFromEnv();
    sweep::SweepEngine engine(tpi, opts);
    std::cout << core::experiments::fig3(engine).render();
    return 0;
}
