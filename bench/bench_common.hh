/**
 * @file
 * Shared scaffolding for the reproduction bench binaries.
 *
 * Every bench accepts an optional scale divisor as argv[1] (Table 1
 * instruction counts are divided by it; default 200, i.e. ~12M
 * simulated instructions for the full suite) and prints one table or
 * figure series, paper anchors included, via the experiment registry.
 */

#ifndef PIPECACHE_BENCH_BENCH_COMMON_HH
#define PIPECACHE_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>

#include "core/experiments.hh"
#include "obs/env.hh"

namespace pipecache::bench {

inline core::SuiteConfig
suiteFromArgs(int argc, char **argv, double default_scale = 200.0)
{
    // Every bench funnels through here, so this one call gives them
    // all PIPECACHE_STATS/PIPECACHE_TRACE/PIPECACHE_STATS_3C output
    // without per-binary flag plumbing.
    obs::initFromEnv();
    core::SuiteConfig config;
    config.scaleDivisor = default_scale;
    if (argc > 1) {
        // strtod with end-pointer validation: non-numeric argv (e.g.
        // "--help") must produce a usage error, not parse to 0 and be
        // conflated with a sub-1 divisor. A sub-1 divisor itself is
        // refused too — it would silently mean "run the paper's full
        // 2.4G instructions".
        char *end = nullptr;
        const double scale = std::strtod(argv[1], &end);
        if (end == argv[1] || *end != '\0' || scale < 1.0) {
            std::cerr << "usage: " << argv[0]
                      << " [scale-divisor >= 1]\n";
            std::exit(2);
        }
        config.scaleDivisor = scale;
    }
    return config;
}

/** Worker threads for engine-driven benches: $PIPECACHE_THREADS or
 *  all hardware cores. */
inline std::size_t
threadsFromEnv()
{
    const char *env = std::getenv("PIPECACHE_THREADS");
    if (env == nullptr)
        return 0;
    char *end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0') {
        std::cerr << "ignoring malformed PIPECACHE_THREADS='" << env
                  << "'\n";
        return 0;
    }
    return static_cast<std::size_t>(v);
}

} // namespace pipecache::bench

#endif // PIPECACHE_BENCH_BENCH_COMMON_HH
