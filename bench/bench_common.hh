/**
 * @file
 * Shared scaffolding for the reproduction bench binaries.
 *
 * Every bench accepts an optional scale divisor as argv[1] (Table 1
 * instruction counts are divided by it; default 200, i.e. ~12M
 * simulated instructions for the full suite) and prints one table or
 * figure series, paper anchors included, via the experiment registry.
 */

#ifndef PIPECACHE_BENCH_BENCH_COMMON_HH
#define PIPECACHE_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>

#include "core/experiments.hh"

namespace pipecache::bench {

inline core::SuiteConfig
suiteFromArgs(int argc, char **argv, double default_scale = 200.0)
{
    core::SuiteConfig config;
    config.scaleDivisor = default_scale;
    if (argc > 1) {
        config.scaleDivisor = std::atof(argv[1]);
        if (config.scaleDivisor < 1.0) {
            // Garbage or a sub-1 divisor would silently mean "run the
            // paper's full 2.4G instructions" — refuse instead.
            std::cerr << "usage: " << argv[0]
                      << " [scale-divisor >= 1]\n";
            std::exit(2);
        }
    }
    return config;
}

} // namespace pipecache::bench

#endif // PIPECACHE_BENCH_BENCH_COMMON_HH
