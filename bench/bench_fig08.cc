/** Reproduces Figure 8 (CPI vs L1-D size per load delay cycles). */
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pipecache;
    core::CpiModel model(bench::suiteFromArgs(argc, argv));
    std::cout << core::experiments::fig8(model).render();
    return 0;
}
