/**
 * @file
 * pipecache_sweepd — the sweep service daemon.
 *
 * Listens on a Unix socket and/or loopback TCP port, accepts
 * concurrent line-protocol requests (see serve/protocol.hh), and
 * evaluates them through one shared serve::SweepService — so the
 * factored-evaluation component cache, the sweep engine's point memo,
 * and the prepared trace/translation state persist across requests.
 * The first request on a suite pays the cold cost; later overlapping
 * grids assemble from warm components, while every response's JSON
 * stays byte-identical to a cold `pipecache_sweep` run of the same
 * grid (the determinism contract, DESIGN.md par. 13).
 *
 *   pipecache_sweepd --socket /tmp/pipecache.sock
 *   pipecache_sweepd --port 0            # ephemeral; port printed
 *   pipecache_sweepctl --socket /tmp/pipecache.sock \
 *       sweep preset=fig3 --out fig3.json
 *
 * Admission control: --max-inflight requests evaluate at once, up to
 * --max-queue more wait FIFO, beyond that requests get `ERR
 * unavailable` (client exit code 6). --request-threads caps any one
 * request's worker budget so a big sweep cannot monopolize the pool.
 *
 * SIGTERM/SIGINT (or a SHUTDOWN request) drain gracefully: stop
 * accepting, reject queued work, let in-flight sweeps finish and
 * stream their results, then exit 0.
 *
 * Crash recovery: with --journal PATH every in-flight SWEEP request
 * is journaled (serve/journal.hh). After a SIGKILL the next start
 * finds the orphaned entries and replays them in the background —
 * bypassing admission control, so a retrying client is never
 * rejected by its own recovery — re-warming the caches the killed
 * run had built. The replay strips any deadline (the original client
 * is gone; expiry would only waste the warm-up).
 *
 * Exit codes: 0 clean shutdown; 1 internal error; 2 usage error;
 * 3 startup I/O error (bind/listen/journal).
 */

#include <csignal>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/env.hh"
#include "obs/stats_registry.hh"
#include "obs/tracer.hh"
#include "serve/journal.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "util/atomic_file.hh"
#include "util/error.hh"
#include "util/parse.hh"

namespace {

/** Upper bound on --threads / --request-threads (typo guard). */
constexpr std::size_t kMaxThreads = 512;

pipecache::serve::SweepServer *g_server = nullptr;

void
onSignal(int)
{
    // Async-signal-safe: atomic store + one write() on a self-pipe.
    if (g_server != nullptr)
        g_server->requestShutdown();
}

struct DaemonOptions
{
    std::string socketPath;
    int tcpPort = -1;
    pipecache::serve::ServiceOptions service;
    std::string statsPath;
    std::string tracePath;
    std::string journalPath;
    bool quiet = false;
};

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::ostream &os = code == 0 ? std::cout : std::cerr;
    os << "usage: " << argv0 << " [options]\n"
       << "  --socket PATH       listen on a Unix socket\n"
       << "  --port N            listen on 127.0.0.1:N (0 = pick an\n"
       << "                      ephemeral port; printed on startup)\n"
       << "  --threads N         worker threads per suite engine,\n"
       << "                      0 = cores            (default 0)\n"
       << "  --max-inflight N    concurrent requests   (default 2)\n"
       << "  --max-queue N       queued requests beyond that before\n"
       << "                      rejection             (default 8)\n"
       << "  --request-threads N per-request worker-budget cap,\n"
       << "                      0 = uncapped          (default 0)\n"
       << "  --memo-limit N      factored component-cache bound per\n"
       << "                      suite, 0 = unbounded  (default 256)\n"
       << "  --journal PATH      journal in-flight requests; after a\n"
       << "                      crash the next start replays them to\n"
       << "                      re-warm the caches\n"
       << "  --stats-out PATH    write the stats registry as JSON\n"
       << "                      (incl. volatile) at shutdown\n"
       << "                      (default $PIPECACHE_STATS)\n"
       << "  --trace-out PATH    write a Perfetto trace at shutdown\n"
       << "                      (default $PIPECACHE_TRACE)\n"
       << "  --quiet             no startup/shutdown lines on stderr\n"
       << "At least one of --socket/--port is required.\n"
       << "Protocol: SWEEP [key=value ...] | PING | STATUS | "
          "SHUTDOWN\n"
       << "Exit codes: 0 clean shutdown; 1 internal; 2 usage;\n"
       << "3 startup I/O error.\n";
    std::exit(code);
}

DaemonOptions
parseArgs(int argc, char **argv)
{
    using pipecache::util::parseSize;

    DaemonOptions opts;
    if (const char *path = pipecache::obs::envStatsPath())
        opts.statsPath = path;
    if (const char *path = pipecache::obs::envTracePath())
        opts.tracePath = path;
    auto next = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << argv[0] << ": " << argv[i]
                      << " needs a value\n";
            usage(argv[0], 2);
        }
        return argv[++i];
    };
    auto sizeArg = [&](int &i, std::size_t max) -> std::size_t {
        const std::string flag = argv[i];
        const std::string spec = next(i);
        std::size_t v = 0;
        if (!parseSize(spec, v) || v > max) {
            std::cerr << argv[0] << ": bad " << flag << " '" << spec
                      << "' (need 0.." << max << ")\n";
            usage(argv[0], 2);
        }
        return v;
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else if (arg == "--socket") {
            opts.socketPath = next(i);
        } else if (arg == "--port") {
            opts.tcpPort = static_cast<int>(sizeArg(i, 65535));
        } else if (arg == "--threads") {
            opts.service.threads = sizeArg(i, kMaxThreads);
        } else if (arg == "--max-inflight") {
            opts.service.maxInflight = sizeArg(i, 1024);
            if (opts.service.maxInflight == 0) {
                std::cerr << argv[0]
                          << ": --max-inflight must be >= 1\n";
                usage(argv[0], 2);
            }
        } else if (arg == "--max-queue") {
            opts.service.maxQueued = sizeArg(i, 65536);
        } else if (arg == "--request-threads") {
            opts.service.maxThreadsPerRequest =
                sizeArg(i, kMaxThreads);
        } else if (arg == "--memo-limit") {
            opts.service.componentCacheLimit =
                sizeArg(i, std::size_t(1) << 30);
        } else if (arg == "--journal") {
            opts.journalPath = next(i);
        } else if (arg == "--stats-out") {
            opts.statsPath = next(i);
        } else if (arg == "--trace-out") {
            opts.tracePath = next(i);
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else {
            std::cerr << argv[0] << ": unknown option '" << arg
                      << "'\n";
            usage(argv[0], 2);
        }
    }
    if (opts.socketPath.empty() && opts.tcpPort < 0) {
        std::cerr << argv[0]
                  << ": need --socket PATH and/or --port N\n";
        usage(argv[0], 2);
    }
    return opts;
}

int
run(int argc, char **argv)
{
    using namespace pipecache;

    const DaemonOptions opts = parseArgs(argc, argv);
    if (!opts.tracePath.empty())
        obs::Tracer::global().enable();

    serve::SweepService service(opts.service);

    // Journal recovery: find what a killed predecessor left
    // in-flight, compact the journal down to exactly those entries,
    // and replay them in the background once the listener is up.
    std::unique_ptr<serve::RequestJournal> journal;
    std::vector<serve::JournalEntry> recoverable;
    if (!opts.journalPath.empty()) {
        recoverable = serve::RequestJournal::compact(
            opts.journalPath,
            serve::RequestJournal::loadPending(opts.journalPath));
        journal = std::make_unique<serve::RequestJournal>(
            opts.journalPath, recoverable.size() + 1);
    }

    serve::ServerOptions serverOpts;
    serverOpts.socketPath = opts.socketPath;
    serverOpts.tcpPort = opts.tcpPort;
    serverOpts.journal = journal.get();
    serve::SweepServer server(service, serverOpts);
    server.start();

    std::thread recovery;
    if (!recoverable.empty()) {
        if (!opts.quiet) {
            std::cerr << "pipecache_sweepd: recovering "
                      << recoverable.size()
                      << " journaled request(s)\n";
        }
        recovery = std::thread([&service, &journal, &recoverable,
                                quiet = opts.quiet] {
            for (const auto &entry : recoverable) {
                try {
                    serve::Request req =
                        serve::parseRequest(entry.request);
                    if (req.verb != serve::Verb::Sweep)
                        continue;
                    // The original client is gone: no deadline (it
                    // would only cut the warm-up short), and replay
                    // errors are logged, never fatal — a request
                    // that was broken before the crash is broken
                    // after it too.
                    req.sweep.deadlineMs = 0;
                    service.warm(req.sweep);
                } catch (const std::exception &e) {
                    if (!quiet) {
                        std::cerr << "pipecache_sweepd: recovery of '"
                                  << entry.request
                                  << "' failed: " << e.what() << "\n";
                    }
                }
                try {
                    journal->end(entry.id);
                } catch (const std::exception &) {
                    // A stale B record costs one redundant replay
                    // next start; never kill the daemon over it.
                }
            }
        });
    }

    g_server = &server;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = onSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    // The startup line is the scripts' readiness signal: once it
    // appears, connects succeed.
    std::cout << "pipecache_sweepd listening";
    if (!opts.socketPath.empty())
        std::cout << " unix=" << opts.socketPath;
    if (server.tcpPort() >= 0)
        std::cout << " tcp=127.0.0.1:" << server.tcpPort();
    std::cout << std::endl;

    server.serve();
    g_server = nullptr;
    if (recovery.joinable())
        recovery.join();

    if (!opts.statsPath.empty()) {
        util::writeFileAtomic(opts.statsPath, [&](std::ostream &out) {
            // A daemon's interesting stats (latency, queue depth,
            // cross-request hits) are volatile by nature — include
            // them; this dump is operational, not a determinism
            // artifact.
            obs::DumpOptions dump;
            dump.includeVolatile = true;
            obs::StatsRegistry::global().dumpJson(out, dump);
        });
    }
    if (!opts.tracePath.empty()) {
        util::writeFileAtomic(opts.tracePath, [&](std::ostream &out) {
            obs::Tracer::global().write(out);
        });
    }
    if (!opts.quiet)
        std::cerr << "pipecache_sweepd: drained ("
                  << service.statusLine() << ")\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pipecache;
    try {
        return run(argc, argv);
    } catch (const Error &e) {
        std::cerr << argv[0] << ": " << e.kindName()
                  << " error: " << e.what() << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << argv[0] << ": internal error: " << e.what()
                  << "\n";
        return 1;
    }
}
