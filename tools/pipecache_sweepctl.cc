/**
 * @file
 * pipecache_sweepctl — client for pipecache_sweepd.
 *
 *   pipecache_sweepctl --socket /tmp/pipecache.sock sweep \
 *       preset=fig3 --out fig3.json
 *   pipecache_sweepctl --port 7321 sweep b=0:3 isize=1,2,4,8 \
 *       --progress
 *   pipecache_sweepctl --socket /tmp/pipecache.sock ping
 *   pipecache_sweepctl --socket /tmp/pipecache.sock status
 *   pipecache_sweepctl --socket /tmp/pipecache.sock shutdown
 *
 * `sweep` takes the protocol's key=value tokens verbatim (b, l,
 * isize, dsize, block, penalty, repl, preset, scale, threads,
 * factored — see serve/protocol.hh) and writes the returned JSON —
 * byte-identical to a cold `pipecache_sweep` run of the same grid —
 * to --out (default stdout, atomically for files). --progress
 * streams the daemon's PROGRESS lines as a live stderr ticker.
 *
 * Robustness knobs: --deadline-ms N asks the daemon to cancel the
 * sweep server-side at N ms (exit 7); --io-timeout-ms N bounds each
 * socket operation client-side (also exit 7); --retries K re-issues
 * the request up to K times on transport failures — connect refused,
 * daemon killed before the first RESULT byte — with deterministic
 * exponential backoff (--retry-base-ms, --retry-seed). Sweeps are
 * idempotent, so a retried response is byte-identical to an
 * uninterrupted one; when any retries happened the summary line on
 * stderr says how many.
 *
 * Exit codes mirror the local CLI plus the service kinds: 0 ok;
 * 1 internal error; 2 usage error; 3 data/io error (including a
 * daemon that is not there, after retries); 4 sweep completed but
 * some points failed; 5 request interrupted; 6 daemon rejected the
 * request (admission control / draining) — retry later; 7 deadline
 * or I/O timeout expired. 6 and 7 are deliberately distinct from 3:
 * a rejection or timeout means the daemon is alive and the request
 * was sound — back off and retry — while 3 means something is
 * actually broken.
 */

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "serve/client.hh"
#include "util/atomic_file.hh"
#include "util/error.hh"
#include "util/parse.hh"

namespace {

struct CtlOptions
{
    std::string socketPath;
    int tcpPort = -1;
    std::string command;
    /** key=value tokens forwarded on the SWEEP line. */
    std::vector<std::string> sweepArgs;
    std::string outPath = "-";
    bool progress = false;
    bool quiet = false;
    /** Server-side deadline (0 = none), forwarded as deadline_ms=. */
    std::size_t deadlineMs = 0;
    /** Client-side per-operation socket timeout (0 = none). */
    std::size_t ioTimeoutMs = 0;
    /** Transport-failure retries (0 = single attempt). */
    std::size_t retries = 0;
    std::size_t retryBaseMs = 50;
    std::size_t retrySeed = 0;
};

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::ostream &os = code == 0 ? std::cout : std::cerr;
    os << "usage: " << argv0
       << " (--socket PATH | --port N) COMMAND [args]\n"
       << "commands:\n"
       << "  sweep [key=value ...] [--out PATH] [--progress]\n"
       << "        run a sweep; keys are the protocol's grid keys\n"
       << "        (b, l, isize, dsize, block, penalty, repl,\n"
       << "        preset) plus scale, threads, factored\n"
       << "  ping      liveness probe\n"
       << "  status    one-line service counters\n"
       << "  shutdown  ask the daemon to drain and exit\n"
       << "options:\n"
       << "  --out PATH   JSON output, '-' = stdout (default -)\n"
       << "  --progress   live progress line on stderr\n"
       << "  --quiet      no summary on stderr\n"
       << "  --deadline-ms N    server cancels the sweep at N ms\n"
       << "                     and answers ERR timeout (exit 7)\n"
       << "  --io-timeout-ms N  client-side per-operation socket\n"
       << "                     timeout (exit 7; 0 = none)\n"
       << "  --retries K        re-issue up to K times on transport\n"
       << "                     failures (never on daemon errors)\n"
       << "  --retry-base-ms N  first backoff, doubling per retry\n"
       << "                     (default 50)\n"
       << "  --retry-seed N     deterministic jitter seed\n"
       << "Exit codes: 0 ok; 1 internal; 2 usage; 3 data/io;\n"
       << "4 completed with failed points; 5 interrupted;\n"
       << "6 rejected by admission control (retry later);\n"
       << "7 deadline or I/O timeout expired.\n";
    std::exit(code);
}

CtlOptions
parseArgs(int argc, char **argv)
{
    CtlOptions opts;
    auto next = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << argv[0] << ": " << argv[i]
                      << " needs a value\n";
            usage(argv[0], 2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else if (arg == "--socket") {
            opts.socketPath = next(i);
        } else if (arg == "--port") {
            const std::string spec = next(i);
            std::size_t v = 0;
            if (!pipecache::util::parseSize(spec, v) || v > 65535) {
                std::cerr << argv[0] << ": bad --port '" << spec
                          << "'\n";
                usage(argv[0], 2);
            }
            opts.tcpPort = static_cast<int>(v);
        } else if (arg == "--out") {
            opts.outPath = next(i);
        } else if (arg == "--deadline-ms" ||
                   arg == "--io-timeout-ms" || arg == "--retries" ||
                   arg == "--retry-base-ms" ||
                   arg == "--retry-seed") {
            const std::string spec = next(i);
            std::size_t v = 0;
            if (!pipecache::util::parseSize(spec, v)) {
                std::cerr << argv[0] << ": bad " << arg << " '"
                          << spec << "'\n";
                usage(argv[0], 2);
            }
            if (arg == "--deadline-ms")
                opts.deadlineMs = v;
            else if (arg == "--io-timeout-ms")
                opts.ioTimeoutMs = v;
            else if (arg == "--retries")
                opts.retries = v;
            else if (arg == "--retry-base-ms")
                opts.retryBaseMs = v;
            else
                opts.retrySeed = v;
        } else if (arg == "--progress") {
            opts.progress = true;
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (opts.command.empty()) {
            if (arg != "sweep" && arg != "ping" && arg != "status" &&
                arg != "shutdown") {
                std::cerr << argv[0] << ": unknown command '" << arg
                          << "'\n";
                usage(argv[0], 2);
            }
            opts.command = arg;
        } else if (opts.command == "sweep" &&
                   arg.find('=') != std::string::npos) {
            opts.sweepArgs.push_back(arg);
        } else {
            std::cerr << argv[0] << ": unexpected argument '" << arg
                      << "'\n";
            usage(argv[0], 2);
        }
    }
    if (opts.command.empty()) {
        std::cerr << argv[0] << ": need a command\n";
        usage(argv[0], 2);
    }
    if (opts.socketPath.empty() && opts.tcpPort < 0) {
        std::cerr << argv[0] << ": need --socket PATH or --port N\n";
        usage(argv[0], 2);
    }
    return opts;
}

int
run(int argc, char **argv)
{
    using namespace pipecache;

    const CtlOptions opts = parseArgs(argc, argv);
    const int ioTimeout =
        opts.ioTimeoutMs > static_cast<std::size_t>(
                               std::numeric_limits<int>::max())
            ? std::numeric_limits<int>::max()
            : static_cast<int>(opts.ioTimeoutMs);
    const auto connect = [&opts, ioTimeout]() {
        serve::SweepClient client =
            opts.socketPath.empty()
                ? serve::SweepClient::connectTcp(opts.tcpPort)
                : serve::SweepClient::connectUnix(opts.socketPath);
        client.setIoTimeout(ioTimeout);
        return client;
    };

    if (opts.command != "sweep") {
        std::string verb = opts.command;
        for (char &c : verb)
            c = static_cast<char>(std::toupper(c));
        serve::SweepClient client = connect();
        const std::string reply = client.command(verb);
        std::cout << reply << "\n";
        return 0;
    }

    std::string args;
    for (const std::string &tok : opts.sweepArgs) {
        if (!args.empty())
            args += " ";
        args += tok;
    }
    if (opts.progress) {
        if (!args.empty())
            args += " ";
        args += "progress=1";
    }
    if (opts.deadlineMs > 0) {
        if (!args.empty())
            args += " ";
        args += "deadline_ms=" + std::to_string(opts.deadlineMs);
    }

    std::function<void(std::size_t, std::size_t)> onProgress;
    if (opts.progress) {
        onProgress = [](std::size_t done, std::size_t total) {
            std::fprintf(stderr, "\r%zu/%zu points ", done, total);
            if (done == total)
                std::fputc('\n', stderr);
            std::fflush(stderr);
        };
    }

    serve::RetryPolicy policy;
    policy.maxAttempts = opts.retries + 1;
    policy.baseDelayMs = opts.retryBaseMs;
    policy.seed = opts.retrySeed;
    std::size_t retried = 0;
    const serve::SweepOutcome outcome = serve::sweepWithRetry(
        connect, args, policy, onProgress, &retried);
    if (retried > 0) {
        std::cerr << "retried " << retried << " time(s) after "
                  << "transport failures\n";
    }

    if (opts.outPath == "-") {
        std::cout << outcome.json;
    } else {
        util::writeFileAtomic(opts.outPath, [&](std::ostream &out) {
            out << outcome.json;
        });
    }
    if (!opts.quiet) {
        std::cerr << "swept " << outcome.points << " points ("
                  << outcome.evaluated << " evaluated, "
                  << outcome.memoHits << " memo hits, "
                  << outcome.crossHits
                  << " served warm across requests) in "
                  << outcome.wallMs << " ms\n";
        if (outcome.failed > 0) {
            std::cerr << outcome.failed
                      << " point(s) failed; see the \"error\" "
                         "objects in the JSON output\n";
        }
    }
    return outcome.failed > 0 ? 4 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pipecache;
    try {
        return run(argc, argv);
    } catch (const Error &e) {
        std::cerr << argv[0] << ": " << e.kindName()
                  << " error: " << e.what() << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << argv[0] << ": internal error: " << e.what()
                  << "\n";
        return 1;
    }
}
