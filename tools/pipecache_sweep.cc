/**
 * @file
 * pipecache_sweep — drive the parallel design-space sweep engine from
 * the command line.
 *
 * Builds the cross product of the requested parameter ranges
 * (branch slots × load slots × L1-I size × L1-D size × block size ×
 * miss penalty), evaluates every point through sweep::SweepEngine on
 * a work-stealing thread pool, and emits JSON (and optionally CSV).
 * The default output is byte-identical across --threads values; pass
 * --timing to add volatile wall-time metadata.
 *
 *   pipecache_sweep --preset paper --threads 8 --out sweep.json
 *   pipecache_sweep --b 0:3 --isize 1,2,4,8,16,32 --scale 2000 --out -
 *   pipecache_sweep --preset fig3 --stats-out stats.json \
 *                   --trace-out trace.json --progress
 *   pipecache_sweep --preset paper --checkpoint sweep.ck --resume \
 *                   --out sweep.json
 *   pipecache_sweep --trace prog.din --dsize 1,2,4,8 --out -
 *   pipecache_sweep --workload zipf-hot --isize 1:8 --out -
 *
 * --trace/--workload switch to external-stream mode: the grid is
 * evaluated against a flat access stream (a .din/.oracleGeneral file
 * or a registry workload) by direct cache measurement instead of the
 * synthetic benchmark suite; see --list-workloads for the zoo.
 *
 * Range syntax: "lo:hi" (inclusive) or a comma-separated list.
 *
 * Fault tolerance: a design point whose evaluation throws is recorded
 * as a failed point in the JSON (the sweep keeps going; --fail-fast
 * restores abort-on-first-error). --checkpoint persists progress
 * atomically; --resume skips already-evaluated points and produces
 * byte-identical default JSON to an uninterrupted run. File outputs
 * are written atomically (temp + fsync + rename), so a kill mid-write
 * never leaves a truncated artifact.
 *
 * SIGINT/SIGTERM are handled cooperatively: in-flight points finish,
 * the current checkpoint (with --checkpoint) is flushed, and the tool
 * exits 5 — so an interrupted long sweep resumes from where it
 * stopped instead of losing the partial work.
 *
 * Exit codes: 0 success; 1 internal error; 2 usage error; 3 data or
 * I/O error; 4 sweep completed but some points failed; 5 interrupted
 * by a signal (completed work checkpointed when enabled).
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/env.hh"
#include "obs/stats_registry.hh"
#include "obs/tracer.hh"
#include "sweep/grid_spec.hh"
#include "sweep/result_sink.hh"
#include "sweep/stream_sweep.hh"
#include "sweep/sweep_engine.hh"
#include "trace/source.hh"
#include "util/atomic_file.hh"
#include "util/error.hh"
#include "util/fault_injection.hh"
#include "util/parse.hh"
#include "workloads/registry.hh"

namespace {

using pipecache::core::DesignPoint;

/** Upper bound on --threads: well past any machine this runs on, but
 *  low enough that a typo can't exhaust the OS spawning std::threads. */
constexpr std::uint32_t kMaxThreads = 512;

/** Set by the SIGINT/SIGTERM handler; polled by the sweep engine
 *  between point evaluations. */
std::atomic<bool> g_cancel{false};

void
onSignal(int)
{
    g_cancel.store(true, std::memory_order_relaxed);
}

struct CliOptions
{
    /** Grid ranges/preset (shared definition with the sweep daemon). */
    pipecache::sweep::GridSpec grid;
    double scaleDivisor = 2000.0;
    std::size_t threads = 0; // 0 = hardware concurrency
    std::string outPath = "-";
    std::string csvPath;
    /** Stats/trace outputs; the environment provides the defaults so
     *  PIPECACHE_STATS/PIPECACHE_TRACE work here like in the benches
     *  (but the tool dumps explicitly, not via atexit). */
    std::string statsPath;
    std::string tracePath;
    bool classify3C = false;
    bool progress = false;
    bool timing = false;
    bool quiet = false;
    std::string checkpointPath;
    std::size_t checkpointEvery = 16;
    bool resume = false;
    bool failFast = false;
    bool factored = true;
    /** External stream mode: exactly one of these may be set. */
    std::string traceFile;
    std::string workload;
    std::uint64_t workloadSeed = 1;

    bool streamMode() const
    {
        return !traceFile.empty() || !workload.empty();
    }
};

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::ostream &os = code == 0 ? std::cout : std::cerr;
    os << "usage: " << argv0 << " [options]\n"
       << "  --b RANGE        branch delay slots        (default 0:3)\n"
       << "  --l RANGE        load delay slots          (default 0)\n"
       << "  --isize RANGE    L1-I sizes in KW          (default "
          "1,2,4,8,16,32)\n"
       << "  --dsize RANGE    L1-D sizes in KW          (default 8)\n"
       << "  --block RANGE    block sizes in words      (default 4)\n"
       << "  --penalty RANGE  miss penalties in cycles  (default 10)\n"
       << "  --repl POLICY    lru | random replacement  (default lru)\n"
       << "  --scale N        suite scale divisor >= 1  (default 2000)\n"
       << "  --threads N      worker threads, 0 = cores (default 0)\n"
       << "  --out PATH       JSON output, '-' = stdout (default -)\n"
       << "  --csv PATH       also write CSV\n"
       << "  --preset NAME    fig3 | fig4 | table6 | paper (the shared\n"
       << "                   size x depth grid behind all three;\n"
       << "                   honors single --block/--penalty values,\n"
       << "                   conflicts with the other range flags)\n"
       << "  --stats-out PATH write the stats registry as JSON\n"
       << "                   (default $PIPECACHE_STATS)\n"
       << "  --trace-out PATH write a Perfetto/chrome://tracing trace\n"
       << "                   (default $PIPECACHE_TRACE)\n"
       << "  --stats-3c       classify misses compulsory/capacity/\n"
       << "                   conflict (slower; implied by\n"
       << "                   $PIPECACHE_STATS_3C)\n"
       << "  --progress       live points/s + ETA line on stderr\n"
       << "  --timing         include volatile wall-time metadata\n"
       << "  --quiet          no summary on stderr\n"
       << "  --checkpoint P   persist completed points to P (atomic\n"
       << "                   write) while the sweep runs\n"
       << "  --checkpoint-every N\n"
       << "                   completions between checkpoint writes\n"
       << "                   (default 16)\n"
       << "  --resume         skip points already in --checkpoint;\n"
       << "                   default JSON output is byte-identical\n"
       << "                   to an uninterrupted run\n"
       << "  --fail-fast      abort on the first failed point instead\n"
       << "                   of recording it and continuing\n"
       << "  --no-factored    one full trace replay per point instead\n"
       << "                   of shared-component (single-pass stack)\n"
       << "                   evaluation; same results, slower\n"
       << "  --trace PATH     evaluate the grid against an external\n"
       << "                   trace file (.din text or .oracleGeneral\n"
       << "                   binary) instead of the synthetic suite\n"
       << "  --workload NAME  evaluate the grid against a named\n"
       << "                   workload from the registry\n"
       << "  --workload-seed N  workload stream seed (default 1)\n"
       << "  --list-workloads print the workload registry and exit\n"
       << "RANGE is 'lo:hi' (inclusive) or 'a,b,c'.\n"
       << "Exit codes: 0 ok; 1 internal error; 2 usage error;\n"
       << "3 data/io error; 4 completed with failed points;\n"
       << "5 interrupted by SIGINT/SIGTERM (completed work is\n"
       << "checkpointed first when --checkpoint is on).\n";
    std::exit(code);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    if (const char *path = pipecache::obs::envStatsPath())
        opts.statsPath = path;
    if (const char *path = pipecache::obs::envTracePath())
        opts.tracePath = path;
    opts.classify3C = pipecache::obs::env3CEnabled();
    auto next = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << argv[0] << ": " << argv[i]
                      << " needs a value\n";
            usage(argv[0], 2);
        }
        return argv[++i];
    };
    // Grid flags delegate to the shared GridSpec (the same parser the
    // sweep daemon's protocol uses); its UsageError carries the
    // specific complaint.
    auto gridArg = [&](int &i, const char *key) {
        const std::string spec = next(i);
        try {
            opts.grid.set(key, spec);
        } catch (const pipecache::Error &e) {
            std::cerr << argv[0] << ": " << e.what() << "\n";
            usage(argv[0], 2);
        }
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else if (arg == "--b") {
            gridArg(i, "b");
        } else if (arg == "--l") {
            gridArg(i, "l");
        } else if (arg == "--isize") {
            gridArg(i, "isize");
        } else if (arg == "--dsize") {
            gridArg(i, "dsize");
        } else if (arg == "--block") {
            gridArg(i, "block");
        } else if (arg == "--penalty") {
            gridArg(i, "penalty");
        } else if (arg == "--repl") {
            gridArg(i, "repl");
        } else if (arg == "--preset") {
            gridArg(i, "preset");
        } else if (arg == "--scale") {
            const std::string spec = next(i);
            if (!pipecache::util::parseFiniteDouble(
                    spec, opts.scaleDivisor) ||
                opts.scaleDivisor < 1.0) {
                std::cerr << argv[0] << ": bad --scale '" << spec
                          << "' (need a finite number >= 1)\n";
                usage(argv[0], 2);
            }
        } else if (arg == "--threads") {
            std::uint32_t v = 0;
            if (!pipecache::util::parseU32(next(i), v) ||
                v > kMaxThreads) {
                std::cerr << argv[0] << ": bad --threads (need 0.."
                          << kMaxThreads << ")\n";
                usage(argv[0], 2);
            }
            opts.threads = v;
        } else if (arg == "--out") {
            opts.outPath = next(i);
        } else if (arg == "--csv") {
            opts.csvPath = next(i);
        } else if (arg == "--stats-out") {
            opts.statsPath = next(i);
        } else if (arg == "--trace-out") {
            opts.tracePath = next(i);
        } else if (arg == "--stats-3c") {
            opts.classify3C = true;
        } else if (arg == "--progress") {
            opts.progress = true;
        } else if (arg == "--timing") {
            opts.timing = true;
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (arg == "--checkpoint") {
            opts.checkpointPath = next(i);
        } else if (arg == "--checkpoint-every") {
            std::uint32_t v = 0;
            if (!pipecache::util::parseU32(next(i), v) || v == 0) {
                std::cerr << argv[0]
                          << ": bad --checkpoint-every (need >= 1)\n";
                usage(argv[0], 2);
            }
            opts.checkpointEvery = v;
        } else if (arg == "--resume") {
            opts.resume = true;
        } else if (arg == "--fail-fast") {
            opts.failFast = true;
        } else if (arg == "--no-factored") {
            opts.factored = false;
        } else if (arg == "--trace") {
            opts.traceFile = next(i);
        } else if (arg == "--workload") {
            opts.workload = next(i);
        } else if (arg == "--workload-seed") {
            std::uint32_t v = 0;
            if (!pipecache::util::parseU32(next(i), v)) {
                std::cerr << argv[0] << ": bad --workload-seed\n";
                usage(argv[0], 2);
            }
            opts.workloadSeed = v;
        } else if (arg == "--list-workloads") {
            for (const auto &w : pipecache::workloads::listWorkloads())
                std::cout << w.name << "\t" << w.description << "\n";
            std::exit(0);
        } else {
            std::cerr << argv[0] << ": unknown option '" << arg
                      << "'\n";
            usage(argv[0], 2);
        }
    }
    try {
        opts.grid.validate();
    } catch (const pipecache::Error &e) {
        std::cerr << argv[0] << ": " << e.what() << "\n";
        usage(argv[0], 2);
    }
    if (opts.resume && opts.checkpointPath.empty()) {
        std::cerr << argv[0] << ": --resume needs --checkpoint\n";
        usage(argv[0], 2);
    }
    if (!opts.traceFile.empty() && !opts.workload.empty()) {
        std::cerr << argv[0]
                  << ": --trace and --workload are exclusive\n";
        usage(argv[0], 2);
    }
    if (opts.streamMode() && !opts.checkpointPath.empty()) {
        std::cerr << argv[0] << ": --checkpoint is not supported with "
                  << "--trace/--workload\n";
        usage(argv[0], 2);
    }
    if (opts.streamMode() && !opts.csvPath.empty()) {
        std::cerr << argv[0] << ": --csv is not supported with "
                  << "--trace/--workload\n";
        usage(argv[0], 2);
    }
    return opts;
}

/**
 * Live progress line on stderr, fed by the sweep's onProgress hook.
 * Called concurrently from worker threads; the displayed count comes
 * from the sweep.points.evaluated registry counter. Throttled so a
 * fast sweep doesn't spend its time redrawing.
 *
 * The rate (and thus the ETA) comes from a sliding window of recent
 * completions, not the since-start average: under factored (or
 * heavily memoized) evaluation the first points amortize shared
 * component replays and later ones assemble nearly for free, so a
 * whole-run average would wildly overestimate the remaining time.
 */
class ProgressReporter
{
  public:
    void report(std::size_t done, std::size_t total)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto now = std::chrono::steady_clock::now();
        samples_.push_back({now, done});
        // Keep ~10s of history (always >= 2 samples for a rate).
        while (samples_.size() > 2 &&
               now - samples_.front().when >
                   std::chrono::seconds(10)) {
            samples_.pop_front();
        }
        if (done < total &&
            now - last_ < std::chrono::milliseconds(100)) {
            return;
        }
        last_ = now;
        const std::uint64_t evaluated =
            pipecache::obs::StatsRegistry::global().counterValue(
                "sweep.points.evaluated");
        const Sample &oldest = samples_.front();
        const double secs =
            std::chrono::duration<double>(now - oldest.when).count();
        const double rate =
            secs > 0.0 && done > oldest.done
                ? static_cast<double>(done - oldest.done) / secs
                : 0.0;
        char line[128];
        if (rate > 0.0 && done < total) {
            const double eta =
                static_cast<double>(total - done) / rate;
            std::snprintf(line, sizeof line,
                          "\r%llu/%zu points  %.1f pts/s  ETA %.0fs ",
                          static_cast<unsigned long long>(evaluated),
                          total, rate, eta);
        } else {
            std::snprintf(line, sizeof line,
                          "\r%llu/%zu points  %.1f pts/s           ",
                          static_cast<unsigned long long>(evaluated),
                          total, rate);
        }
        std::fputs(line, stderr);
        if (done == total)
            std::fputc('\n', stderr);
        std::fflush(stderr);
    }

  private:
    struct Sample
    {
        std::chrono::steady_clock::time_point when;
        std::size_t done;
    };

    std::mutex mutex_;
    std::deque<Sample> samples_;
    std::chrono::steady_clock::time_point last_;
};

int
run(int argc, char **argv)
{
    using namespace pipecache;

    const CliOptions opts = parseArgs(argc, argv);
    const std::vector<DesignPoint> points = opts.grid.build();
    if (points.empty()) {
        std::cerr << "empty sweep grid\n";
        return 2;
    }

    if (opts.streamMode()) {
        // External stream mode: flat records, direct cache
        // measurement (sweep/stream_sweep.hh). The evaluation is
        // sequential and deterministic, so --threads has no effect on
        // the output — which is exactly the byte-stability contract
        // the default path makes.
        std::unique_ptr<trace::TraceSource> source;
        if (!opts.traceFile.empty()) {
            source = trace::openTraceFile(opts.traceFile);
        } else {
            workloads::WorkloadOptions wopts;
            wopts.seed = opts.workloadSeed;
            source = workloads::openWorkload(opts.workload, wopts);
        }
        const std::vector<trace::TraceRecord> stream =
            trace::drain(*source);

        const auto t0 = std::chrono::steady_clock::now();
        const sweep::StreamSweepResult result =
            sweep::sweepStream(stream, points);
        const auto t1 = std::chrono::steady_clock::now();

        const std::string name = opts.grid.name();
        if (opts.outPath == "-") {
            sweep::writeStreamJson(std::cout, name, source->name(),
                                   result);
        } else {
            util::writeFileAtomic(
                opts.outPath, [&](std::ostream &out) {
                    sweep::writeStreamJson(out, name, source->name(),
                                           result);
                });
        }
        if (!opts.quiet) {
            const double wall_ms =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            std::cerr << "swept " << result.records.size()
                      << " points against " << stream.size()
                      << " records from " << source->name() << " in "
                      << wall_ms << " ms\n";
        }
        return 0;
    }

    if (opts.classify3C)
        obs::setClassify3C(true);
    if (!opts.tracePath.empty())
        obs::Tracer::global().enable();

    // Cooperative interruption: the engine finishes in-flight points,
    // flushes the checkpoint, and throws InterruptedError (exit 5).
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    core::SuiteConfig suite;
    suite.scaleDivisor = opts.scaleDivisor;
    core::CpiModel cpi(suite);
    core::TpiModel tpi(cpi);

    ProgressReporter progress;
    sweep::SweepOptions engine_opts;
    engine_opts.threads = opts.threads;
    sweep::SweepEngine engine(tpi, engine_opts);

    sweep::RunOptions run_opts;
    run_opts.failFast = opts.failFast;
    run_opts.checkpointPath = opts.checkpointPath;
    run_opts.checkpointEvery = opts.checkpointEvery;
    run_opts.resume = opts.resume;
    run_opts.factored = opts.factored;
    run_opts.cancel = &g_cancel;
    // A fresh engine is cold by definition; coldMetadata keeps the
    // reported stats identical to the historical sweep() path.
    run_opts.coldMetadata = true;
    if (opts.progress) {
        run_opts.onProgress = [&progress](std::size_t done,
                                          std::size_t total) {
            progress.report(done, total);
        };
    }

    const auto t0 = std::chrono::steady_clock::now();
    const sweep::RunResult result = engine.run(points, run_opts);
    const std::vector<sweep::SweepRecord> &records = result.records;
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    sweep::SinkOptions sink;
    sink.includeWallTimes = opts.timing;
    const std::string name = opts.grid.name();

    // Every file artifact goes through the atomic write helper: a
    // crash mid-write leaves the previous complete file, never a
    // truncated one.
    if (opts.outPath == "-") {
        sweep::writeJson(std::cout, name, records, result.stats,
                         sink);
    } else {
        util::writeFileAtomic(opts.outPath, [&](std::ostream &out) {
            sweep::writeJson(out, name, records, result.stats,
                             sink);
        });
    }
    if (!opts.csvPath.empty()) {
        util::writeFileAtomic(opts.csvPath, [&](std::ostream &out) {
            sweep::writeCsv(out, records, sink);
        });
    }
    if (!opts.statsPath.empty()) {
        util::writeFileAtomic(opts.statsPath, [&](std::ostream &out) {
            // Volatile stats follow the same opt-in as the result
            // JSON's wall times, so the default stats dump is
            // byte-identical across --threads values too.
            obs::DumpOptions dump;
            dump.includeVolatile = opts.timing;
            obs::StatsRegistry::global().dumpJson(out, dump);
        });
    }
    if (!opts.tracePath.empty()) {
        util::writeFileAtomic(opts.tracePath, [&](std::ostream &out) {
            obs::Tracer::global().write(out);
        });
    }

    const sweep::SweepStats &stats = result.stats;
    if (!opts.quiet) {
        std::cerr << "swept " << records.size() << " points ("
                  << stats.cacheMisses << " evaluated, "
                  << stats.cacheHits << " memo hits) on "
                  << engine.threadCount() << " threads in " << wall_ms
                  << " ms\n";
        if (opts.factored) {
            std::cerr << "factored evaluation saved "
                      << stats.replaysSaved << " trace replay(s)\n";
        }
        if (stats.pointsFailed > 0) {
            std::cerr << stats.pointsFailed
                      << " point(s) failed; see the \"error\" "
                         "objects in the JSON output\n";
        }
    }
    return stats.pointsFailed > 0 ? 4 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pipecache;
    try {
        // PIPECACHE_FAULTS=site:nth arms fault-injection points when
        // the harness is compiled in (no-op otherwise).
        fi::armFromEnv();
        return run(argc, argv);
    } catch (const Error &e) {
        std::cerr << argv[0] << ": " << e.kindName() << " error: "
                  << e.what() << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << argv[0] << ": internal error: " << e.what()
                  << "\n";
        return 1;
    }
}
