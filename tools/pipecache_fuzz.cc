/**
 * @file
 * pipecache_fuzz — differential fuzzer for the simulator's
 * independent implementations (see qa/oracle.hh for the oracle set).
 *
 * Generates deterministic random cases from (--seed, case index),
 * cross-checks each through the enabled oracles, and on the first
 * violation shrinks the case to a minimal reproducer printed as a
 * ready-to-run command line:
 *
 *   pipecache_fuzz --seed 1 --cases 500
 *   pipecache_fuzz --oracle checkpoint --oracle sweep --cases 200
 *   pipecache_fuzz --case 'suite=scale:10000,...;point=b:0,...'
 *
 * Determinism: case i depends only on (--seed, i) — never on which
 * oracles run or on any earlier case — so reported indices replay
 * individually and a full run replays bit-for-bit on any platform.
 *
 * Exit codes: 0 clean; 1 oracle violation or internal error;
 * 2 usage error; 3 data or I/O error.
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "qa/fuzzer.hh"
#include "util/error.hh"

namespace {

using namespace pipecache;

struct CliOptions
{
    qa::FuzzOptions fuzz;
    /** Single-case replay (--case); bypasses generation. */
    std::vector<std::string> caseSpecs;
    bool listOracles = false;
};

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::ostream &os = code == 0 ? std::cout : std::cerr;
    os << "usage: " << argv0 << " [options]\n"
       << "  --seed N         base seed                 (default 1)\n"
       << "  --cases N        number of random cases    (default 100)\n"
       << "  --oracle NAME    run only this oracle (repeatable;\n"
       << "                   default: all -- see --list-oracles)\n"
       << "  --case SPEC      replay one serialized case (repeatable;\n"
       << "                   disables random generation)\n"
       << "  --no-shrink      report the first failure unshrunk\n"
       << "  --progress N     log a progress line every N cases\n"
       << "  --quiet          suppress everything but failures\n"
       << "  --list-oracles   print oracle names and exit\n"
       << "  --help           this text\n"
       << "Exit codes: 0 clean; 1 oracle violation or internal\n"
       << "error; 2 usage error; 3 data or I/O error.\n";
    std::exit(code);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    auto next = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << argv[0] << ": " << argv[i]
                      << " needs a value\n";
            usage(argv[0], 2);
        }
        return argv[++i];
    };
    auto countArg = [&](int &i) -> std::uint64_t {
        const std::string spec = next(i);
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(spec.c_str(), &end, 10);
        if (end == spec.c_str() || *end != '\0') {
            std::cerr << argv[0] << ": bad count '" << spec << "'\n";
            usage(argv[0], 2);
        }
        return v;
    };
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--seed") {
            opts.fuzz.seed = countArg(i);
        } else if (arg == "--cases") {
            opts.fuzz.cases = countArg(i);
        } else if (arg == "--oracle") {
            opts.fuzz.oracleNames.push_back(next(i));
        } else if (arg == "--case") {
            opts.caseSpecs.push_back(next(i));
        } else if (arg == "--no-shrink") {
            opts.fuzz.shrink = false;
        } else if (arg == "--progress") {
            opts.fuzz.progressEvery = countArg(i);
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list-oracles") {
            opts.listOracles = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else {
            std::cerr << argv[0] << ": unknown option '" << arg
                      << "'\n";
            usage(argv[0], 2);
        }
    }
    opts.fuzz.log = quiet ? nullptr : &std::cerr;
    return opts;
}

int
replayCases(const CliOptions &opts)
{
    const auto oracles = qa::makeOracles(opts.fuzz.oracleNames);
    int worst = 0;
    for (const std::string &spec : opts.caseSpecs) {
        const qa::FuzzCase c = qa::parseCase(spec);
        for (const auto &oracle : oracles) {
            if (!oracle->applies(c)) {
                if (opts.fuzz.log) {
                    *opts.fuzz.log << "skip: oracle '"
                                   << oracle->name()
                                   << "' does not apply\n";
                }
                continue;
            }
            const qa::OracleResult r = qa::runCheck(*oracle, c);
            if (r.ok) {
                if (opts.fuzz.log) {
                    *opts.fuzz.log << "ok: oracle '" << oracle->name()
                                   << "'\n";
                }
                continue;
            }
            std::cerr << "FAIL: oracle '" << oracle->name() << "'\n  "
                      << r.detail << "\n  reproduce: "
                      << qa::reproducerLine(oracle->name(), c) << "\n";
            worst = 1;
        }
    }
    return worst;
}

int
run(int argc, char **argv)
{
    const CliOptions opts = parseArgs(argc, argv);
    if (opts.listOracles) {
        for (const auto &oracle : qa::makeOracles())
            std::cout << oracle->name() << "\n";
        return 0;
    }
    // Validate --oracle names eagerly, before any work.
    (void)qa::makeOracles(opts.fuzz.oracleNames);

    if (!opts.caseSpecs.empty())
        return replayCases(opts);

    const qa::FuzzReport report = qa::runFuzz(opts.fuzz);
    if (!report.ok())
        return 1;
    if (opts.fuzz.log) {
        *opts.fuzz.log << "fuzz: " << report.casesRun << " cases, "
                       << report.checksRun
                       << " oracle checks, 0 failures (seed "
                       << opts.fuzz.seed << ")\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pipecache;
    try {
        return run(argc, argv);
    } catch (const Error &e) {
        std::cerr << argv[0] << ": " << e.kindName()
                  << " error: " << e.what() << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << argv[0] << ": internal error: " << e.what()
                  << "\n";
        return 1;
    }
}
