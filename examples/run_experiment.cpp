/**
 * @file
 * Unified experiment runner: regenerate any paper table/figure by
 * name, with CSV export — the driver behind EXPERIMENTS.md.
 *
 * Usage:
 *   run_experiment <name>... [--scale N] [--csv | --md]
 *   run_experiment --list
 *   run_experiment all [--scale N]
 *
 * Names: table1..table6, fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig11
 * fig12 fig12dyn fig13, optimizer.
 */

#include <cstring>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/experiments.hh"

using namespace pipecache;
namespace exp = core::experiments;

int
main(int argc, char **argv)
{
    double scale = 200.0;
    bool csv = false;
    bool md = false;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--scale" && i + 1 < argc)
            scale = std::atof(argv[++i]);
        else if (arg == "--csv")
            csv = true;
        else if (arg == "--md")
            md = true;
        else
            names.push_back(arg);
    }

    core::SuiteConfig suite;
    suite.scaleDivisor = scale < 1.0 ? 1.0 : scale;
    core::CpiModel cpi(suite);
    core::TpiModel tpi(cpi);

    const std::map<std::string, std::function<TextTable()>> registry{
        {"table1", [&] { return exp::table1(cpi); }},
        {"table2", [&] { return exp::table2(cpi); }},
        {"table3", [&] { return exp::table3(cpi); }},
        {"table4", [&] { return exp::table4(cpi); }},
        {"table5", [&] { return exp::table5(cpi); }},
        {"table6", [&] { return exp::table6(); }},
        {"fig3", [&] { return exp::fig3(cpi); }},
        {"fig4", [&] { return exp::fig4(cpi); }},
        {"fig5", [&] { return exp::fig5(cpi); }},
        {"fig6", [&] { return exp::fig6(cpi); }},
        {"fig7", [&] { return exp::fig7(cpi); }},
        {"fig8", [&] { return exp::fig8(cpi); }},
        {"fig9", [&] { return exp::fig9(tpi); }},
        {"fig11", [&] { return exp::fig11(cpi); }},
        {"fig12", [&] { return exp::fig12(tpi); }},
        {"fig12dyn", [&] { return exp::fig12Dynamic(tpi); }},
        {"fig13", [&] { return exp::fig13(tpi); }},
        {"optimizer", [&] { return exp::optimizerTrajectory(tpi); }},
    };

    if (names.empty() ||
        (names.size() == 1 && names[0] == "--list")) {
        std::cout << "experiments:";
        for (const auto &kv : registry)
            std::cout << " " << kv.first;
        std::cout << "\nusage: run_experiment <name>|all [--scale N] "
                     "[--csv]\n";
        return names.empty() ? 2 : 0;
    }

    if (names.size() == 1 && names[0] == "all") {
        names.clear();
        for (const auto &kv : registry)
            names.push_back(kv.first);
    }

    for (const auto &name : names) {
        const auto it = registry.find(name);
        if (it == registry.end()) {
            std::cerr << "unknown experiment: " << name
                      << " (try --list)\n";
            return 2;
        }
        const TextTable table = it->second();
        std::cout << (csv  ? table.renderCsv()
                      : md ? table.renderMarkdown()
                           : table.render())
                  << "\n";
    }
    return 0;
}
