/**
 * @file
 * Quickstart: evaluate one pipelined-cache design point over the
 * paper's benchmark suite and print the TPI breakdown.
 *
 * Usage: quickstart [scale-divisor]
 *   scale-divisor  divide Table 1 instruction counts by this
 *                  (default 2000; smaller = longer, more faithful).
 */

#include <cstdlib>
#include <iostream>

#include "core/experiments.hh"
#include "core/tpi_model.hh"


namespace {

/** Parse the scale-divisor argument; exit with usage on bad input. */
double
scaleFromArgs(int argc, char **argv, double fallback)
{
    if (argc <= 1)
        return fallback;
    const double scale = std::atof(argv[1]);
    if (scale < 1.0) {
        std::cerr << "usage: " << argv[0]
                  << " [scale-divisor >= 1]\n";
        std::exit(2);
    }
    return scale;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pipecache;

    core::SuiteConfig suite;
    suite.scaleDivisor = scaleFromArgs(argc, argv, 2000.0);

    core::CpiModel cpi_model(suite);
    core::TpiModel tpi_model(cpi_model);

    // The paper's winning design: 3 branch + 3 load delay slots
    // (three cache pipeline stages per side), 32 KW + 32 KW of L1.
    core::DesignPoint design;
    design.branchSlots = 3;
    design.loadSlots = 3;
    design.l1iSizeKW = 32;
    design.l1dSizeKW = 32;
    design.blockWords = 4;
    design.missPenaltyCycles = 10;

    const core::TpiResult tpi = tpi_model.evaluate(design);
    const core::CpiResult &cpi = cpi_model.evaluate(design);

    std::cout << "design: " << design.describe() << "\n\n";
    std::cout << "CPI breakdown (aggregate over the multiprogrammed "
                 "suite):\n";
    std::cout << "  base (issue)    : 1.000\n";
    std::cout << "  fetch waste     : "
              << cpi.aggregate.branchCpi() << "\n";
    std::cout << "  L1-I miss stalls: " << cpi.aggregate.iMissCpi()
              << "\n";
    std::cout << "  L1-D miss stalls: " << cpi.aggregate.dMissCpi()
              << "\n";
    std::cout << "  load delay      : " << cpi.aggregate.loadCpi()
              << "\n";
    std::cout << "  total CPI       : " << tpi.cpi << "\n";
    std::cout << "  (weighted harmonic mean CPI: "
              << cpi.weightedHarmonicMeanCpi() << ")\n\n";

    std::cout << "L1-I miss rate: " << 100.0 * cpi.l1i.missRate()
              << "%  L1-D miss rate: " << 100.0 * cpi.l1d.missRate()
              << "%\n";
    std::cout << "t_CPU = " << tpi.tCpuNs << " ns (I-side "
              << tpi.tIsideNs << ", D-side " << tpi.tDsideNs
              << ")\n";
    std::cout << "TPI   = " << tpi.tpiNs << " ns\n";
    return 0;
}
