/**
 * @file
 * Interop example: a DineroIII-style cache simulator over external
 * "din" traces — run any third-party address trace through the cache
 * model, or export our synthetic workloads for external tools.
 *
 * Usage:
 *   din_cache_sim <trace.din> [--isize B] [--dsize B] [--block B]
 *                 [--assoc N]
 *   din_cache_sim --selftest        (generate, export, re-simulate)
 *
 * din format: one record per line, "<label> <hex address>" with
 * label 0 = read, 1 = write, 2 = instruction fetch.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "cache/hierarchy.hh"
#include "trace/benchmark.hh"
#include "trace/trace_io.hh"
#include "util/table.hh"

using namespace pipecache;

namespace {

void
simulate(const std::vector<trace::TraceRecord> &records,
         cache::HierarchyConfig config)
{
    cache::CacheHierarchy hierarchy(config);
    Counter fetches = 0;
    Counter reads = 0;
    Counter writes = 0;
    for (const auto &rec : records) {
        switch (rec.kind) {
          case trace::RefKind::Fetch:
            hierarchy.accessInst(rec.addr);
            ++fetches;
            break;
          case trace::RefKind::Read:
            hierarchy.accessData(rec.addr, false);
            ++reads;
            break;
          case trace::RefKind::Write:
            hierarchy.accessData(rec.addr, true);
            ++writes;
            break;
        }
    }

    TextTable t("din trace through the cache model");
    t.setHeader({"cache", "accesses", "misses", "miss %"});
    auto row = [&t](const char *name, const cache::CacheStats &s) {
        t.addRow({name, TextTable::num(s.accesses()),
                  TextTable::num(s.misses()),
                  TextTable::num(100.0 * s.missRate(), 2)});
    };
    row("L1-I", hierarchy.l1i().stats());
    row("L1-D", hierarchy.l1d().stats());
    std::cout << t.render();
    std::cout << "records: " << fetches << " fetches, " << reads
              << " reads, " << writes << " writes\n";
}

int
selftest()
{
    // Export one of our workloads as din, read it back, simulate.
    const auto &bench = trace::findBenchmark("small");
    const auto prog = bench.makeProgram(0);
    trace::DataAddressGenerator dgen(bench.dataConfig(0));
    trace::ExecConfig config;
    config.maxInsts = 100000;
    const auto recorded = recordTrace(prog, dgen, config);

    const std::string path = "/tmp/pipecache_selftest.din";
    trace::writeDinFile(path, prog, recorded);
    const auto records = trace::readDinFile(path);
    std::cout << "exported " << records.size() << " din records to "
              << path << "\n";
    simulate(records, cache::HierarchyConfig{});
    std::remove(path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::string(argv[1]) == "--selftest")
        return selftest();
    if (argc < 2) {
        std::cerr << "usage: din_cache_sim <trace.din> [--isize B] "
                     "[--dsize B] [--block B] [--assoc N]\n"
                     "       din_cache_sim --selftest\n";
        return 2;
    }

    cache::HierarchyConfig config;
    for (int i = 2; i + 1 < argc; i += 2) {
        const std::string opt = argv[i];
        const auto value =
            static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
        if (opt == "--isize") {
            config.l1i.sizeBytes = value;
        } else if (opt == "--dsize") {
            config.l1d.sizeBytes = value;
        } else if (opt == "--block") {
            config.l1i.blockBytes = static_cast<std::uint32_t>(value);
            config.l1d.blockBytes = static_cast<std::uint32_t>(value);
        } else if (opt == "--assoc") {
            config.l1i.assoc = static_cast<std::uint32_t>(value);
            config.l1d.assoc = static_cast<std::uint32_t>(value);
        } else {
            std::cerr << "unknown option " << opt << "\n";
            return 2;
        }
    }

    simulate(trace::readDinFile(argv[1]), config);
    return 0;
}
