/**
 * @file
 * Design-space explorer: sweep cache sizes and pipeline depths, print
 * the TPI surface (optionally as CSV), and run the multilevel
 * optimizer from a chosen starting point — the paper's Section 2
 * methodology as a command-line tool.
 *
 * Usage:
 *   design_explorer [options]
 *     --scale N      trace scale divisor (default 1000)
 *     --penalty P    L1 miss penalty in cycles (default 10)
 *     --block W      block size in words (default 4)
 *     --csv          emit the sweep as CSV instead of a table
 *     --optimize     also run the multilevel optimizer
 *     --dynamic      use dynamic (out-of-order) load scheduling
 */

#include <cstring>
#include <iostream>
#include <string>

#include "core/optimizer.hh"
#include "core/tpi_model.hh"
#include "util/table.hh"

namespace {

struct Options
{
    double scale = 1000.0;
    std::uint32_t penalty = 10;
    std::uint32_t blockWords = 4;
    bool csv = false;
    bool optimize = false;
    bool dynamicLoads = false;
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scale") {
            opts.scale = std::atof(next());
        } else if (arg == "--penalty") {
            opts.penalty =
                static_cast<std::uint32_t>(std::atoi(next()));
        } else if (arg == "--block") {
            opts.blockWords =
                static_cast<std::uint32_t>(std::atoi(next()));
        } else if (arg == "--csv") {
            opts.csv = true;
        } else if (arg == "--optimize") {
            opts.optimize = true;
        } else if (arg == "--dynamic") {
            opts.dynamicLoads = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "see the file header for options\n";
            std::exit(0);
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            std::exit(2);
        }
    }
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pipecache;
    const Options opts = parseArgs(argc, argv);

    core::SuiteConfig suite;
    suite.scaleDivisor = opts.scale;
    core::CpiModel cpi_model(suite);
    core::TpiModel tpi_model(cpi_model);

    TextTable sweep("TPI (ns) sweep: equal I/D split, b = l = depth, "
                    "P = " + std::to_string(opts.penalty));
    sweep.setHeader({"total KW", "depth 0", "depth 1", "depth 2",
                     "depth 3", "best"});

    core::DesignPoint best_point;
    double best_tpi = 1e18;
    for (std::uint32_t total : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        std::vector<std::string> row{
            TextTable::num(std::uint64_t{total})};
        double row_best = 1e18;
        std::uint32_t row_depth = 0;
        for (std::uint32_t depth = 0; depth <= 3; ++depth) {
            core::DesignPoint p;
            p.l1iSizeKW = total / 2;
            p.l1dSizeKW = total / 2;
            p.branchSlots = depth;
            p.loadSlots = depth;
            p.blockWords = opts.blockWords;
            p.missPenaltyCycles = opts.penalty;
            p.loadScheme = opts.dynamicLoads
                               ? cpusim::LoadScheme::Dynamic
                               : cpusim::LoadScheme::Static;
            const double tpi = tpi_model.evaluate(p).tpiNs;
            row.push_back(TextTable::num(tpi, 2));
            if (tpi < row_best) {
                row_best = tpi;
                row_depth = depth;
            }
            if (tpi < best_tpi) {
                best_tpi = tpi;
                best_point = p;
            }
        }
        row.push_back("d=" + std::to_string(row_depth));
        sweep.addRow(std::move(row));
    }

    std::cout << (opts.csv ? sweep.renderCsv() : sweep.render());
    std::cout << "\nbest design: " << best_point.describe()
              << "  TPI = " << TextTable::num(best_tpi, 2) << " ns\n";

    if (opts.optimize) {
        core::OptimizerConfig oconfig;
        oconfig.exploreLoadScheme = true;
        core::MultilevelOptimizer optimizer(tpi_model, oconfig);
        core::DesignPoint start;
        start.l1iSizeKW = 2;
        start.l1dSizeKW = 2;
        start.branchSlots = 0;
        start.loadSlots = 0;
        start.blockWords = opts.blockWords;
        start.missPenaltyCycles = opts.penalty;

        TextTable traj("\nMultilevel optimization trajectory");
        traj.setHeader({"step", "design", "CPI", "t_CPU", "TPI",
                        "change"});
        const auto steps = optimizer.optimize(start);
        for (std::size_t i = 0; i < steps.size(); ++i) {
            traj.addRow({TextTable::num(std::uint64_t{i}),
                         steps[i].point.describe(),
                         TextTable::num(steps[i].tpi.cpi, 3),
                         TextTable::num(steps[i].tpi.tCpuNs, 2),
                         TextTable::num(steps[i].tpi.tpiNs, 2),
                         steps[i].change});
        }
        std::cout << (opts.csv ? traj.renderCsv() : traj.render());
    }
    return 0;
}
