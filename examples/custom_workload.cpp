/**
 * @file
 * Downstream-user extension example: define a workload that is not in
 * the paper's Table 1 (here, a pointer-chasing database-like engine
 * and a streaming DSP kernel), generate its synthetic programs and
 * traces, and find the pipeline depth and cache split that minimize
 * TPI for *that* mix — i.e., use the library as a design tool rather
 * than a reproduction harness.
 *
 * Usage: custom_workload [scale-divisor]
 */

#include <cstdlib>
#include <iostream>

#include "cache/hierarchy.hh"
#include "cpusim/cpi_engine.hh"
#include "isa/program_generator.hh"
#include "sched/branch_sched.hh"
#include "timing/cpu_circuit.hh"
#include "trace/executor.hh"
#include "trace/trace_stats.hh"
#include "util/table.hh"

using namespace pipecache;

namespace {

struct CustomWorkload
{
    std::string name;
    isa::GenProfile gen;
    trace::DataGenConfig data;
    Counter insts;
};

/** An OLTP-ish engine: branchy, pointer-heavy, big code footprint. */
CustomWorkload
databaseEngine(double scale)
{
    CustomWorkload w;
    w.name = "dbengine";
    w.gen.name = w.name;
    w.gen.seed = 2024;
    w.gen.staticInsts = 30000;
    w.gen.numProcs = 36;
    w.gen.loadFrac = 0.27;
    w.gen.storeFrac = 0.10;
    w.gen.ctiFrac = 0.19;
    w.gen.meanTrip = 4;
    w.gen.stackFrac = 0.20;
    w.gen.globalFrac = 0.15;
    w.gen.arrayFrac = 0.05;
    w.gen.heapFrac = 0.60;

    w.data.base = 0;
    w.data.heapBytes = 1 << 20; // 1 MB working set
    w.data.heapTheta = 0.65;    // flat popularity: cache-hostile
    w.data.arrayBytes = {64 * 1024};
    w.data.seed = 7;
    w.insts = static_cast<Counter>(4e8 / scale);
    return w;
}

/** A DSP kernel: tiny code, long loops, pure streaming. */
CustomWorkload
dspKernel(double scale)
{
    CustomWorkload w;
    w.name = "dspfir";
    w.gen.name = w.name;
    w.gen.seed = 4096;
    w.gen.staticInsts = 900;
    w.gen.numProcs = 4;
    w.gen.loadFrac = 0.34;
    w.gen.storeFrac = 0.15;
    w.gen.ctiFrac = 0.05;
    w.gen.fpFrac = 0.45;
    w.gen.meanTrip = 120;
    w.gen.stackFrac = 0.05;
    w.gen.globalFrac = 0.10;
    w.gen.arrayFrac = 0.80;
    w.gen.heapFrac = 0.05;

    w.data.base = 0x01000000;
    w.data.arrayBytes = {96 * 1024, 96 * 1024, 32 * 1024};
    w.data.heapBytes = 16 * 1024;
    w.data.seed = 9;
    w.insts = static_cast<Counter>(2e8 / scale);
    return w;
}

/** CPI of one workload at one design point. */
double
workloadCpi(const isa::Program &prog,
            const trace::RecordedTrace &trace, std::uint32_t b,
            std::uint32_t l, std::uint32_t ikw, std::uint32_t dkw)
{
    const auto xlat = sched::scheduleBranchDelays(prog, b);

    cache::HierarchyConfig hc;
    hc.l1i.sizeBytes = kiloWordsToBytes(ikw);
    hc.l1d.sizeBytes = kiloWordsToBytes(dkw);
    hc.flatPenalty = 10;
    cache::CacheHierarchy hierarchy(hc);

    cpusim::EngineConfig ec;
    ec.branchSlots = b;
    ec.loadSlots = l;
    cpusim::CpiEngine engine(ec, hierarchy,
                             {{&prog, &xlat, &trace}});
    engine.runAll();
    return engine.aggregate().cpi();
}

void
explore(const CustomWorkload &w)
{
    isa::Program prog = isa::generateProgram(w.gen);
    trace::DataAddressGenerator dgen(w.data);
    trace::ExecConfig ec;
    ec.seed = w.gen.seed * 31;
    ec.maxInsts = w.insts;
    const auto trace = recordTrace(prog, dgen, ec);

    const auto mix = trace::computeMix(prog, trace);
    std::cout << "\n== " << w.name << " ==  (" << trace.instCount
              << " insts: " << TextTable::num(mix.loadPct(), 1)
              << "% loads, " << TextTable::num(mix.storePct(), 1)
              << "% stores, " << TextTable::num(mix.ctiPct(), 1)
              << "% CTIs)\n";

    TextTable t("TPI (ns) vs depth and split (P=10)");
    t.setHeader({"I/D KW", "d=0", "d=1", "d=2", "d=3"});

    timing::CpuTimingParams params;
    double best = 1e18;
    std::string best_desc;
    for (const auto &[ikw, dkw] :
         {std::pair{4u, 4u}, {8u, 8u}, {16u, 16u}, {32u, 8u},
          {8u, 32u}, {32u, 32u}}) {
        std::vector<std::string> row{std::to_string(ikw) + "/" +
                                     std::to_string(dkw)};
        for (std::uint32_t d = 0; d <= 3; ++d) {
            const double cpi =
                workloadCpi(prog, trace, d, d, ikw, dkw);
            const double tcpu = std::max(
                timing::sideCycleNs(params, {ikw, d}),
                timing::sideCycleNs(params, {dkw, d}));
            const double tpi = cpi * tcpu;
            row.push_back(TextTable::num(tpi, 2));
            if (tpi < best) {
                best = tpi;
                best_desc = "I=" + std::to_string(ikw) +
                            "KW D=" + std::to_string(dkw) +
                            "KW depth=" + std::to_string(d);
            }
        }
        t.addRow(std::move(row));
    }
    std::cout << t.render();
    std::cout << "best for " << w.name << ": " << best_desc
              << "  TPI = " << TextTable::num(best, 2) << " ns\n";
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 1000.0;
    if (scale < 1.0) {
        std::cerr << "usage: " << argv[0]
                  << " [scale-divisor >= 1]\n";
        return 2;
    }
    explore(databaseEngine(scale));
    explore(dspKernel(scale));

    std::cout << "\nNote how the loop-dominated DSP kernel tolerates "
                 "deep cache pipelines\n(its branches are backward and "
                 "predictable, its loads schedulable), while\nthe "
                 "branchy pointer-chasing engine keeps more of the "
                 "delay-slot cost.\n";
    return 0;
}
