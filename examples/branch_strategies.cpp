/**
 * @file
 * Branch-strategy shoot-out: delayed branches with optional squashing
 * (software) versus the 256-entry branch-target buffer (hardware),
 * across delay-slot counts, I-cache sizes, and miss penalties — the
 * Section 3.1 debate of the paper, including the code-expansion
 * effect on the instruction cache that the paper says must not be
 * ignored.
 *
 * Usage: branch_strategies [scale-divisor]
 */

#include <cstdlib>
#include <iostream>

#include "core/cpi_model.hh"
#include "util/table.hh"


namespace {

/** Parse the scale-divisor argument; exit with usage on bad input. */
double
scaleFromArgs(int argc, char **argv, double fallback)
{
    if (argc <= 1)
        return fallback;
    const double scale = std::atof(argv[1]);
    if (scale < 1.0) {
        std::cerr << "usage: " << argv[0]
                  << " [scale-divisor >= 1]\n";
        std::exit(2);
    }
    return scale;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pipecache;

    core::SuiteConfig suite;
    suite.scaleDivisor = scaleFromArgs(argc, argv, 1000.0);
    core::CpiModel model(suite);

    // Total branch-related CPI (waste/penalties + the I-miss delta
    // caused by squashing's code expansion) per scheme.
    TextTable t("Branch handling: total CPI, squash vs. BTB "
                "(columns: I-cache KW / penalty)");
    t.setHeader({"b", "scheme", "1KW P=18", "1KW P=6", "8KW P=10",
                 "32KW P=10"});

    struct CachePoint
    {
        std::uint32_t kw;
        std::uint32_t penalty;
    };
    const CachePoint cache_points[] = {
        {1, 18}, {1, 6}, {8, 10}, {32, 10}};

    for (std::uint32_t b = 1; b <= 3; ++b) {
        for (const bool use_btb : {false, true}) {
            std::vector<std::string> row{
                TextTable::num(std::uint64_t{b}),
                use_btb ? "btb" : "squash"};
            for (const auto &cp : cache_points) {
                core::DesignPoint p;
                p.branchSlots = b;
                p.l1iSizeKW = cp.kw;
                p.missPenaltyCycles = cp.penalty;
                p.branchScheme = use_btb
                                     ? cpusim::BranchScheme::Btb
                                     : cpusim::BranchScheme::Squash;
                const auto &res = model.evaluate(p);
                row.push_back(TextTable::num(res.cpi(), 3));
            }
            t.addRow(std::move(row));
        }
    }
    std::cout << t.render();

    std::cout
        << "\nThe paper's reading: the software scheme wins on branch\n"
           "CPI alone, but its code expansion costs extra I-cache\n"
           "misses — for small caches and large penalties the BTB\n"
           "pulls even (compare the 1KW columns).\n";
    return 0;
}
